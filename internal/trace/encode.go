package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
)

// Binary trace format ("CDT1"): a compact varint encoding so multi-
// million-reference traces can be written to disk and replayed without
// recompiling the program. Layout:
//
//	magic "CDT1"
//	name            (uvarint length + bytes)
//	alloc table     (uvarint count; per entry: label, uvarint arm count,
//	                 per arm: varint PI, varint X)
//	lock table      (uvarint count; per entry: varint PJ, varint site,
//	                 uvarint page count, varint pages)
//	unlock table    (uvarint count; per entry: uvarint count, varint pages)
//	events          (uvarint count; per event: byte kind, varint arg)
//
// Page references dominate, so the common case costs two or three bytes.
//
// Traces carrying a site column (site.go) write magic "CDT2" instead and
// append two sections after the events:
//
//	site table      (uvarint count; per site: nest, varint line, array, expr)
//	site runs       (uvarint count; per run: uvarint n, varint site)
//
// A site-free trace still writes CDT1, byte-identical to pre-side-band
// output; Read accepts both magics.
// A third magic, "CDT3", selects the columnar chunked layout of cdt3.go:
// the same side tables up front, then the reference string as a delta/
// varint page column with directive events side-banded at their
// positions, framed in bounded chunks so files stream in O(chunk)
// memory. Read accepts all three magics.
const (
	traceMagic   = "CDT1"
	traceMagicV2 = "CDT2"
	traceMagicV3 = "CDT3"
)

// WriteTo serializes the trace. It implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}

	magic := traceMagic
	if t.sitesOn {
		magic = traceMagicV2
	}
	if err := cw.bytes([]byte(magic)); err != nil {
		return cw.n, err
	}
	cw.str(t.Name)
	writeSideTables(cw, t.Allocs, t.LockSets, t.UnlockSets)

	cw.uvarint(uint64(len(t.Events)))
	for _, e := range t.Events {
		cw.byte(byte(e.Kind))
		cw.varint(int64(e.Arg))
	}

	if t.sitesOn {
		writeSiteTable(cw, t.Sites)
		cw.uvarint(uint64(len(t.siteRuns)))
		for _, r := range t.siteRuns {
			cw.uvarint(uint64(r.n))
			cw.varint(int64(r.site))
		}
	}
	if cw.err != nil {
		return cw.n, cw.err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// DecodeError describes a structural problem found while decoding a
// binary trace: truncation, corruption, or values outside the ranges
// the format can legitimately hold. Section names the part of the
// stream being read; Index is the entry within it (-1 when not
// applicable).
type DecodeError struct {
	Section string
	Index   int64
	Err     error
}

func (e *DecodeError) Error() string {
	if e.Index >= 0 {
		return fmt.Sprintf("trace: decode %s[%d]: %v", e.Section, e.Index, e.Err)
	}
	return fmt.Sprintf("trace: decode %s: %v", e.Section, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

func decodeErr(section string, index int64, err error) *DecodeError {
	return &DecodeError{Section: section, Index: index, Err: err}
}

// writeSideTables serializes the directive side tables, shared by the
// CDT1/CDT2 and CDT3 encoders.
func writeSideTables(cw *countWriter, allocs []AllocDirective, locks []LockSet, unlocks [][]mem.Page) {
	cw.uvarint(uint64(len(allocs)))
	for _, a := range allocs {
		cw.str(a.Label)
		cw.uvarint(uint64(len(a.Arms)))
		for _, arm := range a.Arms {
			cw.varint(int64(arm.PI))
			cw.varint(int64(arm.X))
		}
	}

	cw.uvarint(uint64(len(locks)))
	for _, ls := range locks {
		cw.varint(int64(ls.PJ))
		cw.varint(int64(ls.Site))
		cw.uvarint(uint64(len(ls.Pages)))
		for _, p := range ls.Pages {
			cw.varint(int64(p))
		}
	}

	cw.uvarint(uint64(len(unlocks)))
	for _, ps := range unlocks {
		cw.uvarint(uint64(len(ps)))
		for _, p := range ps {
			cw.varint(int64(p))
		}
	}
}

// writeSiteTable serializes the site table.
func writeSiteTable(cw *countWriter, sites []Site) {
	cw.uvarint(uint64(len(sites)))
	for _, s := range sites {
		cw.str(s.Nest)
		cw.varint(int64(s.Line))
		cw.str(s.Array)
		cw.str(s.Expr)
	}
}

// readSideTables decodes the directive side tables into t, shared by the
// CDT1/CDT2 and CDT3 decoders.
func readSideTables(cr *countReader) (allocs []AllocDirective, locks []LockSet, unlocks [][]mem.Page, err error) {
	nAllocs := cr.uvarint()
	for i := uint64(0); i < nAllocs; i++ {
		a := AllocDirective{Label: cr.str()}
		nArms := cr.uvarint()
		for k := uint64(0); k < nArms && cr.err == nil; k++ {
			a.Arms = append(a.Arms, directive.Arm{PI: int(cr.varint31()), X: int(cr.varint31())})
		}
		if cr.err != nil {
			return nil, nil, nil, decodeErr("alloc table", int64(i), cr.err)
		}
		allocs = append(allocs, a)
	}
	if cr.err != nil {
		return nil, nil, nil, decodeErr("alloc table", -1, cr.err)
	}

	nLocks := cr.uvarint()
	for i := uint64(0); i < nLocks; i++ {
		ls := LockSet{PJ: int(cr.varint31()), Site: int(cr.varint31())}
		nPages := cr.uvarint()
		for k := uint64(0); k < nPages && cr.err == nil; k++ {
			ls.Pages = append(ls.Pages, mem.Page(cr.page()))
		}
		if cr.err != nil {
			return nil, nil, nil, decodeErr("lock table", int64(i), cr.err)
		}
		locks = append(locks, ls)
	}
	if cr.err != nil {
		return nil, nil, nil, decodeErr("lock table", -1, cr.err)
	}

	nUnlocks := cr.uvarint()
	for i := uint64(0); i < nUnlocks; i++ {
		nPages := cr.uvarint()
		var ps []mem.Page
		for k := uint64(0); k < nPages && cr.err == nil; k++ {
			ps = append(ps, mem.Page(cr.page()))
		}
		if cr.err != nil {
			return nil, nil, nil, decodeErr("unlock table", int64(i), cr.err)
		}
		unlocks = append(unlocks, ps)
	}
	if cr.err != nil {
		return nil, nil, nil, decodeErr("unlock table", -1, cr.err)
	}
	return allocs, locks, unlocks, nil
}

// readSiteTable decodes the site table.
func readSiteTable(cr *countReader) ([]Site, error) {
	var sites []Site
	nSites := cr.uvarint()
	for i := uint64(0); i < nSites; i++ {
		s := Site{Nest: cr.str(), Line: int(cr.varint31()), Array: cr.str(), Expr: cr.str()}
		if cr.err != nil {
			return nil, decodeErr("site table", int64(i), cr.err)
		}
		sites = append(sites, s)
	}
	if cr.err != nil {
		return nil, decodeErr("site table", -1, cr.err)
	}
	return sites, nil
}

// Read deserializes a trace written by WriteTo. Any structural defect —
// truncation, bad magic, out-of-range table indexes, negative pages,
// values overflowing the on-disk width — is reported as a *DecodeError;
// Read never panics on corrupt input.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, decodeErr("magic", -1, err)
	}
	cr := &countReader{r: br}
	switch string(magic) {
	case traceMagic, traceMagicV2:
	case traceMagicV3:
		return readCDT3(cr)
	default:
		return nil, decodeErr("magic", -1, fmt.Errorf("bad magic %q", magic))
	}
	hasSites := string(magic) == traceMagicV2

	t := New(cr.str())
	if cr.err != nil {
		return nil, decodeErr("name", -1, cr.err)
	}

	var err error
	t.Allocs, t.LockSets, t.UnlockSets, err = readSideTables(cr)
	if err != nil {
		return nil, err
	}

	nEvents := cr.uvarint()
	for i := uint64(0); i < nEvents; i++ {
		kind := EventKind(cr.byte())
		arg := cr.varint31()
		if cr.err != nil {
			return nil, decodeErr("events", int64(i), cr.err)
		}
		switch kind {
		case EvRef:
			if arg < 0 {
				return nil, decodeErr("events", int64(i), fmt.Errorf("negative page %d", arg))
			}
			t.AddRef(mem.Page(arg)) // maintains Refs/Distinct counters
		case EvAlloc, EvLock, EvUnlock:
			if arg < 0 || int(arg) >= sideLen(t, kind) {
				return nil, decodeErr("events", int64(i), fmt.Errorf("%v index %d out of range", kind, arg))
			}
			t.Events = append(t.Events, Event{Kind: kind, Arg: int32(arg)})
		default:
			return nil, decodeErr("events", int64(i), fmt.Errorf("unknown kind %d", kind))
		}
	}
	if cr.err != nil {
		return nil, decodeErr("events", -1, cr.err)
	}

	if hasSites {
		// The decode loop above appended events without noting sites, so
		// the column is reconstructed wholesale and audited against the
		// event count afterwards.
		t.Sites, err = readSiteTable(cr)
		if err != nil {
			return nil, err
		}
		nRuns := cr.uvarint()
		for i := uint64(0); i < nRuns; i++ {
			n := cr.varint31u()
			site := cr.varint31()
			if cr.err != nil {
				return nil, decodeErr("site runs", int64(i), cr.err)
			}
			t.siteRuns = append(t.siteRuns, siteRun{n: int32(n), site: int32(site)})
		}
		if cr.err != nil {
			return nil, decodeErr("site runs", -1, cr.err)
		}
		t.sitesOn = true
		t.curSite = NoSite
		if err := t.auditSiteRuns(); err != nil {
			return nil, decodeErr("site runs", -1, err)
		}
	}
	return t, nil
}

func sideLen(t *Trace, kind EventKind) int {
	switch kind {
	case EvAlloc:
		return len(t.Allocs)
	case EvLock:
		return len(t.LockSets)
	default:
		return len(t.UnlockSets)
	}
}

// countWriter accumulates write errors and byte counts.
type countWriter struct {
	w   *bufio.Writer
	n   int64
	err error
	buf [binary.MaxVarintLen64]byte
}

func (c *countWriter) bytes(b []byte) error {
	if c.err != nil {
		return c.err
	}
	n, err := c.w.Write(b)
	c.n += int64(n)
	c.err = err
	return err
}

func (c *countWriter) byte(b byte) {
	if c.err != nil {
		return
	}
	c.err = c.w.WriteByte(b)
	if c.err == nil {
		c.n++
	}
}

func (c *countWriter) uvarint(v uint64) {
	n := binary.PutUvarint(c.buf[:], v)
	_ = c.bytes(c.buf[:n])
}

func (c *countWriter) varint(v int64) {
	n := binary.PutVarint(c.buf[:], v)
	_ = c.bytes(c.buf[:n])
}

func (c *countWriter) str(s string) {
	c.uvarint(uint64(len(s)))
	_ = c.bytes([]byte(s))
}

// countReader accumulates read errors and counts consumed bytes, so the
// chunked CDT3 reader can record where the header ends and the chunk
// stream begins.
type countReader struct {
	r   *bufio.Reader
	n   int64
	err error
}

func (c *countReader) byte() byte {
	if c.err != nil {
		return 0
	}
	b, err := c.r.ReadByte()
	c.err = err
	if err == nil {
		c.n++
	}
	return b
}

// uvarint decodes a varint byte by byte (rather than via
// binary.ReadUvarint) so the consumed-byte count stays exact.
func (c *countReader) uvarint() uint64 {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b := c.byte()
		if c.err != nil {
			return 0
		}
		if i == binary.MaxVarintLen64 {
			c.err = fmt.Errorf("varint overflows 64 bits")
			return 0
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				c.err = fmt.Errorf("varint overflows 64 bits")
				return 0
			}
			return x | uint64(b)<<s
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

func (c *countReader) varint() int64 {
	ux := c.uvarint()
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x
}

// varint31 reads a varint and rejects values outside the int32 range,
// the widest any trace field legitimately uses; the previous silent
// int32 truncation turned corrupt bytes into plausible-looking values.
func (c *countReader) varint31() int64 {
	v := c.varint()
	if c.err == nil && (v > math.MaxInt32 || v < math.MinInt32) {
		c.err = fmt.Errorf("value %d overflows int32", v)
	}
	return v
}

// varint31u reads a uvarint and rejects values outside the int32 range.
func (c *countReader) varint31u() uint64 {
	v := c.uvarint()
	if c.err == nil && v > math.MaxInt32 {
		c.err = fmt.Errorf("value %d overflows int32", v)
	}
	return v
}

// page reads a page number, which must be non-negative.
func (c *countReader) page() int64 {
	v := c.varint31()
	if c.err == nil && v < 0 {
		c.err = fmt.Errorf("negative page %d", v)
	}
	return v
}

func (c *countReader) str() string {
	n := c.uvarint()
	if c.err != nil {
		return ""
	}
	if n > 1<<20 {
		c.err = fmt.Errorf("string length %d too large", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(c.r, b); err != nil {
		c.err = err
		return ""
	}
	c.n += int64(len(b))
	return string(b)
}
