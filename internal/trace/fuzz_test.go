package trace

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the binary trace decoder. The
// contract under fuzzing: Read never panics, every failure is a
// structured *DecodeError, and anything that decodes successfully
// round-trips through WriteTo with identical counters. The seed corpus
// below runs as ordinary unit tests during plain `go test`.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	if _, err := sampleTrace().WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("NOPE1234"))
	f.Add([]byte("CDT1"))
	f.Add([]byte("CDT1\x00\x00\x00\x00\x01"))
	f.Add([]byte("CDT1\x02AB\x00\x00\x00\x03\x00\x04\x00\x06"))
	// A name length claiming 2^30 bytes.
	f.Add([]byte{'C', 'D', 'T', '1', 0x80, 0x80, 0x80, 0x80, 0x04})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("decode failure is not a *DecodeError: %v", err)
			}
			return
		}
		var out bytes.Buffer
		if _, err := tr.WriteTo(&out); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		tr2, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if tr2.Refs != tr.Refs || tr2.Distinct != tr.Distinct || len(tr2.Events) != len(tr.Events) {
			t.Fatalf("round-trip mismatch: refs %d/%d distinct %d/%d events %d/%d",
				tr.Refs, tr2.Refs, tr.Distinct, tr2.Distinct, len(tr.Events), len(tr2.Events))
		}
	})
}
