package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the binary trace decoder. The
// contract under fuzzing: Read never panics, every failure is a
// structured *DecodeError, and anything that decodes successfully
// round-trips through WriteTo with identical counters. The seed corpus
// below runs as ordinary unit tests during plain `go test`.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	if _, err := sampleTrace().WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("NOPE1234"))
	f.Add([]byte("CDT1"))
	f.Add([]byte("CDT1\x00\x00\x00\x00\x01"))
	f.Add([]byte("CDT1\x02AB\x00\x00\x00\x03\x00\x04\x00\x06"))
	// A name length claiming 2^30 bytes.
	f.Add([]byte{'C', 'D', 'T', '1', 0x80, 0x80, 0x80, 0x80, 0x04})
	// Columnar seeds: valid CDT3 streams (siteless, sited, tiny chunks)
	// plus a bare header, so mutations explore the chunk framing.
	for _, seed := range cdt3Seeds(f) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("decode failure is not a *DecodeError: %v", err)
			}
			return
		}
		var out bytes.Buffer
		if _, err := tr.WriteTo(&out); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		tr2, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if tr2.Refs != tr.Refs || tr2.Distinct != tr.Distinct || len(tr2.Events) != len(tr.Events) {
			t.Fatalf("round-trip mismatch: refs %d/%d distinct %d/%d events %d/%d",
				tr.Refs, tr2.Refs, tr.Distinct, tr2.Distinct, len(tr.Events), len(tr2.Events))
		}
	})
}

// cdt3Seeds builds the CDT3 corpus shared by FuzzDecode and
// FuzzDecodeCDT3.
func cdt3Seeds(f *testing.F) [][]byte {
	encode := func(tr *Trace, chunk int) []byte {
		var buf bytes.Buffer
		if _, err := WriteCDT3(&buf, tr, chunk); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	full := encode(sampleTrace(), 0)
	return [][]byte{
		full,
		encode(sampleTrace(), 3),
		encode(sitedSampleTrace(), 7),
		encode(New("EMPTY"), 0),
		full[:len(full)-1],         // missing terminator
		full[:len(full)*3/4],       // truncated mid-chunk
		[]byte("CDT3"),             // magic only
		[]byte("CDT3\x00\x02"),     // bad flags
		[]byte("CDT3\x00\x00\xff"), // totals cut short
	}
}

// FuzzDecodeCDT3 cross-checks the two CDT3 decoders on arbitrary bytes:
// the full materializing decoder (Read) and the O(chunk) streaming
// cursor (OpenCDT3). Neither may panic, every failure must be a
// structured *DecodeError, and whenever the full decoder accepts a
// stream the cursor must replay exactly the declared totals. (The
// streaming path skips the full decoder's whole-trace audits — distinct
// count, site-run coverage — so it may accept streams Read rejects, but
// never vice versa.)
func FuzzDecodeCDT3(f *testing.F) {
	for _, seed := range cdt3Seeds(f) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, rerr := Read(bytes.NewReader(data))
		if rerr != nil {
			var de *DecodeError
			if !errors.As(rerr, &de) {
				t.Fatalf("Read failure is not a *DecodeError: %v", rerr)
			}
		}

		path := filepath.Join(t.TempDir(), "fuzz.cdt3")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		src, oerr := OpenCDT3(path)
		if oerr != nil {
			var de *DecodeError
			if !errors.As(oerr, &de) {
				t.Fatalf("OpenCDT3 failure is not a *DecodeError: %v", oerr)
			}
			if rerr == nil && len(data) >= 4 && string(data[:4]) == traceMagicV3 {
				t.Fatalf("Read accepted what OpenCDT3 rejected: %v", oerr)
			}
			return
		}
		cur := src.Blocks(CursorOpts{WithSites: true})
		defer cur.Close()
		events, refs := 0, 0
		var b Block
		for cur.Next(&b) {
			events += b.Events()
			refs += len(b.Pages)
		}
		if serr := cur.Err(); serr != nil {
			var de *DecodeError
			if !errors.As(serr, &de) {
				t.Fatalf("cursor failure is not a *DecodeError: %v", serr)
			}
			if rerr == nil {
				t.Fatalf("Read accepted what the cursor rejected: %v", serr)
			}
			return
		}
		meta := src.Meta()
		if events != meta.Events || refs != meta.Refs {
			t.Fatalf("stream replayed %d events / %d refs, header declares %d / %d",
				events, refs, meta.Events, meta.Refs)
		}
		if rerr == nil && (len(tr.Events) != events || tr.Refs != refs) {
			t.Fatalf("stream %d events / %d refs, full decode %d / %d",
				events, refs, len(tr.Events), tr.Refs)
		}
	})
}
