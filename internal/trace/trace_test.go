package trace

import (
	"testing"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
)

func TestAddRefCountsDistinct(t *testing.T) {
	tr := New("t")
	for _, p := range []mem.Page{1, 2, 1, 3, 2, 1} {
		tr.AddRef(p)
	}
	if tr.Refs != 6 {
		t.Errorf("refs = %d, want 6", tr.Refs)
	}
	if tr.Distinct != 3 {
		t.Errorf("distinct = %d, want 3", tr.Distinct)
	}
}

func TestAllocInterning(t *testing.T) {
	tr := New("t")
	d := &directive.Allocate{Arms: []directive.Arm{{PI: 2, X: 10}, {PI: 1, X: 3}}}
	tr.AddAlloc(d)
	tr.AddAlloc(d)
	if len(tr.Allocs) != 1 {
		t.Errorf("side table entries = %d, want 1 (interned)", len(tr.Allocs))
	}
	if len(tr.Events) != 2 {
		t.Errorf("events = %d, want 2", len(tr.Events))
	}
	arms := tr.Arms(tr.Events[0])
	if len(arms) != 2 || arms[0].X != 10 {
		t.Errorf("arms = %v", arms)
	}
}

func TestLockUnlockRoundTrip(t *testing.T) {
	tr := New("t")
	tr.AddLock(3, 7, []mem.Page{4, 5})
	tr.AddUnlock([]mem.Page{4, 5})
	ls := tr.Lock(tr.Events[0])
	if ls.PJ != 3 || ls.Site != 7 || len(ls.Pages) != 2 {
		t.Errorf("lock set = %+v", ls)
	}
	ul := tr.Unlock(tr.Events[1])
	if len(ul) != 2 || ul[0] != 4 {
		t.Errorf("unlock pages = %v", ul)
	}
}

func TestPagesAndStrip(t *testing.T) {
	tr := New("t")
	tr.AddRef(1)
	tr.AddLock(2, 0, []mem.Page{1})
	tr.AddRef(2)
	pages := tr.Pages()
	if len(pages) != 2 || pages[0] != 1 || pages[1] != 2 {
		t.Errorf("pages = %v", pages)
	}
	s := tr.StripDirectives()
	if len(s.Events) != 2 || s.Refs != 2 || s.Distinct != 2 {
		t.Errorf("stripped = %+v", s)
	}
}

func TestSummary(t *testing.T) {
	tr := New("prog")
	tr.AddRef(1)
	tr.AddLock(2, 0, nil)
	got := tr.Summary()
	want := "prog: R=1 references, V=1 distinct pages, 1 directive events"
	if got != want {
		t.Errorf("summary = %q, want %q", got, want)
	}
}
