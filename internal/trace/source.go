// Streaming trace plane: Source/Cursor abstract *where a reference
// stream comes from* (an in-memory Trace, a fully decoded columnar
// trace, a chunked CDT3 file) from *how it is replayed*. A Cursor hands
// the simulator Blocks — runs of consecutive page references terminated
// by at most one directive event — so the hot loop steps whole batches
// through a policy.BlockStepper instead of dispatching per event, and a
// multi-GB on-disk trace replays in O(chunk) memory without ever
// materializing []Event.
package trace

import (
	"cdmm/internal/mem"
)

// Meta describes a reference stream without materializing it. Sources
// know their totals up front (the in-memory trace counts as it is built;
// the CDT3 header carries them), so policies can pre-size dense state and
// progress callbacks can report completion fractions.
type Meta struct {
	// Name identifies the traced program.
	Name string
	// Events is the total event count (references + directives).
	Events int
	// Refs is R, the number of page references.
	Refs int
	// Distinct is V, the number of distinct pages referenced.
	Distinct int
	// MaxPage is the largest referenced page, -1 when there are none.
	MaxPage mem.Page
	// HasSites reports whether the stream carries a source-site column.
	HasSites bool
}

// SideTables holds the directive side tables a stream's directive events
// index via Event.Arg, plus the site table of the provenance column.
// All slices are read-only views owned by the source.
type SideTables struct {
	Allocs     []AllocDirective
	LockSets   []LockSet
	UnlockSets [][]mem.Page
	Sites      []Site
}

// Alloc resolves an EvAlloc event.
func (st *SideTables) Alloc(e Event) AllocDirective { return st.Allocs[e.Arg] }

// Lock resolves an EvLock event.
func (st *SideTables) Lock(e Event) LockSet { return st.LockSets[e.Arg] }

// Unlock resolves an EvUnlock event.
func (st *SideTables) Unlock(e Event) []mem.Page { return st.UnlockSets[e.Arg] }

// Block is one batch of a reference stream: zero or more consecutive
// page references followed by at most one directive event. Directives
// are rare in real traces, so blocks are long page runs and the
// per-block bookkeeping amortizes to nothing. The slices are owned by
// the cursor and valid only until the next Next call.
type Block struct {
	// Pages are the consecutive page references of the batch.
	Pages []mem.Page
	// Sites are the per-reference site ids, parallel to Pages. Nil
	// unless the cursor was opened with CursorOpts.WithSites on a
	// site-carrying stream.
	Sites []int32
	// HasDir reports that Dir holds a directive event closing the block.
	HasDir bool
	// Dir is the directive event (EvAlloc/EvLock/EvUnlock) after the
	// references; resolve it against the source's SideTables.
	Dir Event
	// DirSite is the site id of Dir when sites were requested.
	DirSite int32
}

// Events returns the number of trace events the block covers.
func (b *Block) Events() int {
	n := len(b.Pages)
	if b.HasDir {
		n++
	}
	return n
}

// CursorOpts configure a cursor.
type CursorOpts struct {
	// WithSites asks for per-reference site ids in Block.Sites (and
	// Block.DirSite). Ignored by streams without a site column.
	WithSites bool
	// MaxBlock caps the references per block; 0 means the source's
	// natural batching (a whole inter-directive run for in-memory
	// traces, a decode chunk for streamed ones). Progress-reporting
	// replays cap blocks so callbacks fire at a steady cadence.
	MaxBlock int
}

// Cursor walks a reference stream block by block. Cursors are
// single-use and not safe for concurrent use; obtain a fresh cursor per
// replay via Source.Blocks.
type Cursor interface {
	// Next fills b with the next block and reports whether one was
	// produced. Block slices are invalidated by the following Next.
	Next(b *Block) bool
	// Err returns the error that terminated iteration early, if any
	// (chunked sources surface decode errors here; in-memory cursors
	// never fail).
	Err() error
	// Close releases resources held by the cursor (open files for
	// streamed sources). Close is idempotent; Next must not be called
	// after Close.
	Close() error
}

// Source produces cursors over a reference stream. The in-memory
// *Trace, the fully decoded columnar trace and the chunked CDT3 file
// reader all implement it, so every simulator entry point replays any
// of them through one code path.
type Source interface {
	// Meta returns the stream's totals.
	Meta() Meta
	// Tables returns the directive side tables. The result is shared
	// and read-only.
	Tables() *SideTables
	// Blocks opens a cursor at the start of the stream.
	Blocks(opts CursorOpts) Cursor
}

// --- *Trace as a Source ---------------------------------------------

// Meta implements Source. It is O(1): the counters are maintained as
// events are appended, so asking for hints never forces the memoized
// views to materialize.
func (t *Trace) Meta() Meta {
	return Meta{
		Name:     t.Name,
		Events:   len(t.Events),
		Refs:     t.Refs,
		Distinct: t.Distinct,
		MaxPage:  t.maxPageSeen(),
		HasSites: t.sitesOn,
	}
}

// Tables implements Source. The result is cached so repeated replays of
// one trace (policy grids, perf loops) allocate nothing here; the cache
// invalidates when any side table grows (they are append-only, so equal
// lengths imply identical content).
func (t *Trace) Tables() *SideTables {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.tables
	if c == nil || len(c.Allocs) != len(t.Allocs) || len(c.LockSets) != len(t.LockSets) ||
		len(c.UnlockSets) != len(t.UnlockSets) || len(c.Sites) != len(t.Sites) {
		c = &SideTables{
			Allocs:     t.Allocs,
			LockSets:   t.LockSets,
			UnlockSets: t.UnlockSets,
			Sites:      t.Sites,
		}
		t.tables = c
	}
	return c
}

// Blocks implements Source. The cursor serves zero-copy sub-slices of
// the trace's columnar view — the memoized page column with directive
// events side-banded at their reference positions — so block-stepped
// replays touch no per-event structure at all.
func (t *Trace) Blocks(opts CursorOpts) Cursor {
	c := t.blockCursor(opts)
	return &c
}

// WalkBlocks streams the trace's blocks through fn (stopping early when
// fn returns false) with the cursor kept on the stack: unlike Blocks,
// whose interface return value forces the cursor to the heap, a whole
// walk allocates nothing. Blocks are passed by value; their slices are
// zero-copy views invalidated by the next iteration, exactly as with
// Cursor.Next. The simulator's block loop takes this path for in-memory
// traces, which is what lets steady-state replays report zero
// allocations per run.
func (t *Trace) WalkBlocks(opts CursorOpts, fn func(Block) bool) error {
	c := t.blockCursor(opts)
	var b Block
	for c.Next(&b) {
		if !fn(b) {
			break
		}
	}
	return c.Err()
}

// blockCursor returns the concrete cursor by value so the hot in-memory
// replay path can keep it on the stack.
func (t *Trace) blockCursor(opts CursorOpts) memCursor {
	t.mu.Lock()
	d := t.view()
	t.mu.Unlock()
	c := memCursor{
		pages: d.pages,
		dirs:  d.dirs,
		max:   opts.MaxBlock,
	}
	if opts.WithSites && t.sitesOn {
		c.sites = true
		c.siteCur = t.SiteCursor()
	}
	return c
}

// memCursor iterates the columnar view of an in-memory trace.
type memCursor struct {
	pages []mem.Page // full reference string
	dirs  []dirPos   // directive events at their ref positions
	max   int        // block cap; 0 = unbounded

	ri int // references consumed
	di int // directives consumed

	sites   bool
	siteCur SiteCursor
	siteBuf []int32
}

// Next implements Cursor.
func (c *memCursor) Next(b *Block) bool {
	b.Pages = nil
	b.Sites = nil
	b.HasDir = false
	b.DirSite = NoSite
	if c.ri >= len(c.pages) && c.di >= len(c.dirs) {
		return false
	}
	// The block runs to the next directive (or stream end), capped at max.
	hi := len(c.pages)
	dirNext := false
	if c.di < len(c.dirs) {
		hi = int(c.dirs[c.di].refsBefore)
		dirNext = true
	}
	if c.max > 0 && hi-c.ri > c.max {
		hi = c.ri + c.max
		dirNext = false
	}
	b.Pages = c.pages[c.ri:hi]
	if c.sites {
		b.Sites = c.fillSites(b.Pages)
	}
	c.ri = hi
	if dirNext {
		b.HasDir = true
		b.Dir = c.dirs[c.di].ev
		if c.sites {
			b.DirSite = c.siteCur.Next()
		}
		c.di++
	}
	return true
}

// fillSites advances the site cursor over the block's references.
func (c *memCursor) fillSites(pages []mem.Page) []int32 {
	if cap(c.siteBuf) < len(pages) {
		c.siteBuf = make([]int32, len(pages))
	}
	buf := c.siteBuf[:len(pages)]
	for i := range buf {
		buf[i] = c.siteCur.Next()
	}
	return buf
}

// Err implements Cursor; in-memory iteration cannot fail.
func (c *memCursor) Err() error { return nil }

// Close implements Cursor.
func (c *memCursor) Close() error { return nil }

var _ Source = (*Trace)(nil)
var _ Cursor = (*memCursor)(nil)
