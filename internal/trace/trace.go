// Package trace defines the page-reference trace that the virtual memory
// simulator replays. A trace is the sequence of data-page references a
// program makes (instructions and constants are assumed permanently
// resident, per the paper's §5), interleaved with the memory-directive
// events (ALLOCATE / LOCK / UNLOCK) that the compiler inserted, resolved
// to concrete pages at execution time.
package trace

import (
	"fmt"
	"sync"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
)

// EventKind discriminates trace events.
type EventKind uint8

const (
	// EvRef is a reference to a data page.
	EvRef EventKind = iota
	// EvAlloc is an executed ALLOCATE directive; Arg indexes Allocs.
	EvAlloc
	// EvLock is an executed LOCK directive; Arg indexes LockSets.
	EvLock
	// EvUnlock is an executed UNLOCK directive; Arg indexes UnlockSets.
	EvUnlock
)

// Event is one trace entry. For EvRef, Arg is the page number; for the
// directive events it indexes the corresponding side table. Events are
// kept to 8 bytes so multi-million-reference traces stay cheap.
type Event struct {
	Kind EventKind
	Arg  int32
}

// AllocDirective is the side-table entry of an executed ALLOCATE: the
// else-chain of (PI, X) arms plus the key of the loop the directive
// precedes (used by directive-set selectors with per-loop overrides).
type AllocDirective struct {
	Label string
	Arms  []directive.Arm
}

// LockSet is the resolved page set of one LOCK execution.
type LockSet struct {
	PJ    int
	Site  int // lock site id; re-execution of a site replaces its locks
	Pages []mem.Page
}

// Trace is a complete program execution record.
type Trace struct {
	Name   string
	Events []Event

	// Side tables referenced by Event.Arg.
	Allocs     []AllocDirective
	LockSets   []LockSet
	UnlockSets [][]mem.Page

	// Sites is the source-site table of the optional provenance
	// side-band; see site.go. Empty on traces built without SetSite.
	Sites []Site

	// Refs is R, the number of page references.
	Refs int
	// Distinct is V, the number of distinct pages referenced.
	Distinct int

	allocIndex map[*directive.Allocate]int32
	seen       map[mem.Page]bool

	// maxSeen tracks the largest referenced page incrementally (valid
	// while maxKnown), so MaxPage and the streaming Meta view are O(1)
	// and never force the memoized views to materialize. Traces built
	// by literal construction (internal views, chaos clones) leave
	// maxKnown false and fall back to a one-time scan.
	maxSeen  mem.Page
	maxKnown bool

	// Site column state (site.go): the RLE runs parallel to Events, the
	// site stamped on the next appended event, and whether the column
	// exists at all.
	siteRuns []siteRun
	curSite  int32
	sitesOn  bool

	// mu guards the memoized views derived from Events (reference string,
	// page universe, directive-free trace). The caches key on len(Events),
	// so appending events invalidates them; editing events in place after a
	// view has been requested is not supported.
	mu    sync.Mutex
	views *derived
	// tables caches the Tables() result; valid while every side-table
	// length is unchanged (the tables are append-only, so equal lengths
	// mean identical content). Guarded by mu.
	tables *SideTables
}

// derived holds the memoized views of one event-stream snapshot. pages
// and dirs together are the columnar form of the event stream: the
// reference string as one contiguous page column, with the (rare)
// directive events side-banded at their reference positions — exactly
// the shape the block cursor serves zero-copy and the CDT3 wire format
// stores.
type derived struct {
	events   int        // len(t.Events) when built
	pages    []mem.Page // the reference string, in order
	dirs     []dirPos   // directive events at their reference positions
	maxPage  mem.Page   // largest referenced page; -1 when there are none
	uni      *Universe  // dense-id view, built on first Universe call
	refsOnly *Trace     // directive-free view, built on first RefsOnly call
}

// dirPos is one side-banded directive event: ev executes after the
// first refsBefore entries of the page column.
type dirPos struct {
	refsBefore int64
	ev         Event
}

// Universe is the dense page-id view of a trace's reference string: every
// distinct page is assigned a contiguous id in first-appearance order, so
// analyses can replace per-page hash lookups with array indexing. All
// slices are shared and read-only.
type Universe struct {
	// NumPages is the number of distinct pages (the id space size, V).
	NumPages int
	// MaxPage is the largest referenced page number, -1 when no refs.
	MaxPage mem.Page
	// IDs holds the dense id of each reference, parallel to Pages().
	IDs []int32
	// ByID maps a dense id back to its page number.
	ByID []mem.Page
}

// New returns an empty trace.
func New(name string) *Trace {
	return &Trace{
		Name:       name,
		allocIndex: map[*directive.Allocate]int32{},
		seen:       map[mem.Page]bool{},
		curSite:    NoSite,
		maxSeen:    -1,
		maxKnown:   true,
	}
}

// AddRef appends a page reference.
func (t *Trace) AddRef(p mem.Page) {
	t.Events = append(t.Events, Event{Kind: EvRef, Arg: int32(p)})
	t.noteSite()
	t.Refs++
	if t.maxKnown && p > t.maxSeen {
		t.maxSeen = p
	}
	if !t.seen[p] {
		t.seen[p] = true
		t.Distinct++
	}
}

// maxPageSeen returns the largest referenced page, computing and caching
// it with a one-time scan on traces assembled by literal construction.
func (t *Trace) maxPageSeen() mem.Page {
	if t.maxKnown {
		return t.maxSeen
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.maxKnown {
		maxPg := mem.Page(-1)
		for _, e := range t.Events {
			if e.Kind == EvRef && mem.Page(e.Arg) > maxPg {
				maxPg = mem.Page(e.Arg)
			}
		}
		t.maxSeen = maxPg
		t.maxKnown = true
	}
	return t.maxSeen
}

// AddAlloc appends an ALLOCATE execution. The arm list of a given
// directive is interned: repeated executions share one side-table entry.
func (t *Trace) AddAlloc(d *directive.Allocate) {
	idx, ok := t.allocIndex[d]
	if !ok {
		idx = int32(len(t.Allocs))
		label := ""
		if d.For != nil {
			label = d.For.Key()
		}
		t.Allocs = append(t.Allocs, AllocDirective{Label: label, Arms: d.Arms})
		t.allocIndex[d] = idx
	}
	t.Events = append(t.Events, Event{Kind: EvAlloc, Arg: idx})
	t.noteSite()
}

// AddLock appends a LOCK execution with its resolved pages.
func (t *Trace) AddLock(pj, site int, pages []mem.Page) {
	idx := int32(len(t.LockSets))
	t.LockSets = append(t.LockSets, LockSet{PJ: pj, Site: site, Pages: pages})
	t.Events = append(t.Events, Event{Kind: EvLock, Arg: idx})
	t.noteSite()
}

// AddUnlock appends an UNLOCK execution covering the given pages.
func (t *Trace) AddUnlock(pages []mem.Page) {
	idx := int32(len(t.UnlockSets))
	t.UnlockSets = append(t.UnlockSets, pages)
	t.Events = append(t.Events, Event{Kind: EvUnlock, Arg: idx})
	t.noteSite()
}

// Page returns the page of a reference event.
func (t *Trace) Page(e Event) mem.Page { return mem.Page(e.Arg) }

// Alloc returns the directive of an EvAlloc event.
func (t *Trace) Alloc(e Event) AllocDirective { return t.Allocs[e.Arg] }

// Arms returns the arm list of an EvAlloc event.
func (t *Trace) Arms(e Event) []directive.Arm { return t.Allocs[e.Arg].Arms }

// Lock returns the lock set of an EvLock event.
func (t *Trace) Lock(e Event) LockSet { return t.LockSets[e.Arg] }

// Unlock returns the page set of an EvUnlock event.
func (t *Trace) Unlock(e Event) []mem.Page { return t.UnlockSets[e.Arg] }

// view returns the memoized derived views, rebuilding them when the event
// count has changed since they were computed. Callers must hold t.mu.
func (t *Trace) view() *derived {
	if t.views == nil || t.views.events != len(t.Events) {
		d := &derived{events: len(t.Events), maxPage: -1}
		d.pages = make([]mem.Page, 0, t.Refs)
		for _, e := range t.Events {
			if e.Kind == EvRef {
				pg := mem.Page(e.Arg)
				d.pages = append(d.pages, pg)
				if pg > d.maxPage {
					d.maxPage = pg
				}
			} else {
				d.dirs = append(d.dirs, dirPos{refsBefore: int64(len(d.pages)), ev: e})
			}
		}
		t.views = d
	}
	return t.views
}

// Pages returns the reference string (no directive events). The slice is
// computed once and shared across calls — callers must treat it as
// read-only. Appending further events invalidates the memo.
func (t *Trace) Pages() []mem.Page {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.view().pages
}

// MaxPage returns the largest page number the trace references, or -1 for
// an empty reference string. It is O(1) on traces built through the
// Add* methods and never materializes the memoized views.
func (t *Trace) MaxPage() mem.Page {
	return t.maxPageSeen()
}

// ViewsMaterialized reports which memoized derived views have been built
// (for tests and diagnostics): the columnar page/directive columns, the
// dense-id Universe, and the directive-free RefsOnly twin. A replay
// through the cursor API builds only the columnar view; a streamed CDT3
// replay builds none of them.
func (t *Trace) ViewsMaterialized() (columnar, universe, refsOnly bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.views == nil {
		return false, false, false
	}
	return true, t.views.uni != nil, t.views.refsOnly != nil
}

// Universe returns the memoized dense page-id view of the reference
// string. The returned struct and its slices are shared and read-only.
func (t *Trace) Universe() *Universe {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.universeLocked(t.view())
}

// universeLocked builds d's universe memo. Callers must hold t.mu.
func (t *Trace) universeLocked(d *derived) *Universe {
	if d.uni == nil {
		u := &Universe{MaxPage: d.maxPage, IDs: make([]int32, len(d.pages))}
		idOf := make(map[mem.Page]int32, t.Distinct)
		for i, pg := range d.pages {
			id, ok := idOf[pg]
			if !ok {
				id = int32(len(u.ByID))
				idOf[pg] = id
				u.ByID = append(u.ByID, pg)
			}
			u.IDs[i] = id
		}
		u.NumPages = len(u.ByID)
		d.uni = u
	}
	return d.uni
}

// RefsOnly returns the directive-free view of the trace: the same
// reference string with no ALLOCATE/LOCK/UNLOCK events, memoized and
// shared across calls. A trace with no directive events returns itself.
// The returned trace is read-only; use StripDirectives for a private
// mutable copy.
func (t *Trace) RefsOnly() *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.view()
	if d.refsOnly == nil {
		if len(d.pages) == len(t.Events) {
			d.refsOnly = t // already directive-free
			return d.refsOnly
		}
		events := make([]Event, len(d.pages))
		for i, pg := range d.pages {
			events[i] = Event{Kind: EvRef, Arg: int32(pg)}
		}
		ro := &Trace{
			Name:     t.Name,
			Events:   events,
			Refs:     len(d.pages),
			Distinct: t.Distinct,
			curSite:  NoSite,
			maxSeen:  d.maxPage,
			maxKnown: true,
		}
		// The site column, when present, is projected onto the
		// reference-only events (sharing the site table) so attributed
		// runs of directive-blind policies see the same provenance.
		if t.sitesOn {
			ro.Sites = t.Sites
			ro.sitesOn = true
			cur := t.SiteCursor()
			for _, e := range t.Events {
				s := cur.Next()
				if e.Kind == EvRef {
					ro.appendSiteRun(1, s)
				}
			}
		}
		// The view shares the parent's reference string and universe
		// (built now if needed — it is O(R), like this view itself).
		ro.views = &derived{events: len(events), pages: d.pages, maxPage: d.maxPage, uni: t.universeLocked(d)}
		ro.views.refsOnly = ro
		d.refsOnly = ro
	}
	return d.refsOnly
}

// StripDirectives returns a copy of the trace with directive events
// removed, for running directive-blind policies (LRU, WS) on the same
// reference string. The copy shares no mutable state with t.
func (t *Trace) StripDirectives() *Trace {
	out := New(t.Name)
	if t.sitesOn {
		out.Sites = append([]Site(nil), t.Sites...)
		out.sitesOn = true
	}
	cur := t.SiteCursor()
	for _, e := range t.Events {
		s := cur.Next()
		if e.Kind == EvRef {
			out.curSite = s // no-op attribution when the column is off
			out.AddRef(mem.Page(e.Arg))
		}
	}
	return out
}

// Summary renders a one-line description.
func (t *Trace) Summary() string {
	nd := 0
	for _, e := range t.Events {
		if e.Kind != EvRef {
			nd++
		}
	}
	return fmt.Sprintf("%s: R=%d references, V=%d distinct pages, %d directive events", t.Name, t.Refs, t.Distinct, nd)
}
