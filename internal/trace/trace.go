// Package trace defines the page-reference trace that the virtual memory
// simulator replays. A trace is the sequence of data-page references a
// program makes (instructions and constants are assumed permanently
// resident, per the paper's §5), interleaved with the memory-directive
// events (ALLOCATE / LOCK / UNLOCK) that the compiler inserted, resolved
// to concrete pages at execution time.
package trace

import (
	"fmt"

	"cdmm/internal/directive"
	"cdmm/internal/mem"
)

// EventKind discriminates trace events.
type EventKind uint8

const (
	// EvRef is a reference to a data page.
	EvRef EventKind = iota
	// EvAlloc is an executed ALLOCATE directive; Arg indexes Allocs.
	EvAlloc
	// EvLock is an executed LOCK directive; Arg indexes LockSets.
	EvLock
	// EvUnlock is an executed UNLOCK directive; Arg indexes UnlockSets.
	EvUnlock
)

// Event is one trace entry. For EvRef, Arg is the page number; for the
// directive events it indexes the corresponding side table. Events are
// kept to 8 bytes so multi-million-reference traces stay cheap.
type Event struct {
	Kind EventKind
	Arg  int32
}

// AllocDirective is the side-table entry of an executed ALLOCATE: the
// else-chain of (PI, X) arms plus the key of the loop the directive
// precedes (used by directive-set selectors with per-loop overrides).
type AllocDirective struct {
	Label string
	Arms  []directive.Arm
}

// LockSet is the resolved page set of one LOCK execution.
type LockSet struct {
	PJ    int
	Site  int // lock site id; re-execution of a site replaces its locks
	Pages []mem.Page
}

// Trace is a complete program execution record.
type Trace struct {
	Name   string
	Events []Event

	// Side tables referenced by Event.Arg.
	Allocs     []AllocDirective
	LockSets   []LockSet
	UnlockSets [][]mem.Page

	// Refs is R, the number of page references.
	Refs int
	// Distinct is V, the number of distinct pages referenced.
	Distinct int

	allocIndex map[*directive.Allocate]int32
	seen       map[mem.Page]bool
}

// New returns an empty trace.
func New(name string) *Trace {
	return &Trace{
		Name:       name,
		allocIndex: map[*directive.Allocate]int32{},
		seen:       map[mem.Page]bool{},
	}
}

// AddRef appends a page reference.
func (t *Trace) AddRef(p mem.Page) {
	t.Events = append(t.Events, Event{Kind: EvRef, Arg: int32(p)})
	t.Refs++
	if !t.seen[p] {
		t.seen[p] = true
		t.Distinct++
	}
}

// AddAlloc appends an ALLOCATE execution. The arm list of a given
// directive is interned: repeated executions share one side-table entry.
func (t *Trace) AddAlloc(d *directive.Allocate) {
	idx, ok := t.allocIndex[d]
	if !ok {
		idx = int32(len(t.Allocs))
		label := ""
		if d.For != nil {
			label = d.For.Key()
		}
		t.Allocs = append(t.Allocs, AllocDirective{Label: label, Arms: d.Arms})
		t.allocIndex[d] = idx
	}
	t.Events = append(t.Events, Event{Kind: EvAlloc, Arg: idx})
}

// AddLock appends a LOCK execution with its resolved pages.
func (t *Trace) AddLock(pj, site int, pages []mem.Page) {
	idx := int32(len(t.LockSets))
	t.LockSets = append(t.LockSets, LockSet{PJ: pj, Site: site, Pages: pages})
	t.Events = append(t.Events, Event{Kind: EvLock, Arg: idx})
}

// AddUnlock appends an UNLOCK execution covering the given pages.
func (t *Trace) AddUnlock(pages []mem.Page) {
	idx := int32(len(t.UnlockSets))
	t.UnlockSets = append(t.UnlockSets, pages)
	t.Events = append(t.Events, Event{Kind: EvUnlock, Arg: idx})
}

// Page returns the page of a reference event.
func (t *Trace) Page(e Event) mem.Page { return mem.Page(e.Arg) }

// Alloc returns the directive of an EvAlloc event.
func (t *Trace) Alloc(e Event) AllocDirective { return t.Allocs[e.Arg] }

// Arms returns the arm list of an EvAlloc event.
func (t *Trace) Arms(e Event) []directive.Arm { return t.Allocs[e.Arg].Arms }

// Lock returns the lock set of an EvLock event.
func (t *Trace) Lock(e Event) LockSet { return t.LockSets[e.Arg] }

// Unlock returns the page set of an EvUnlock event.
func (t *Trace) Unlock(e Event) []mem.Page { return t.UnlockSets[e.Arg] }

// Pages returns only the reference string (no directive events).
func (t *Trace) Pages() []mem.Page {
	out := make([]mem.Page, 0, t.Refs)
	for _, e := range t.Events {
		if e.Kind == EvRef {
			out = append(out, mem.Page(e.Arg))
		}
	}
	return out
}

// StripDirectives returns a copy of the trace with directive events
// removed, for running directive-blind policies (LRU, WS) on the same
// reference string. The copy shares no mutable state with t.
func (t *Trace) StripDirectives() *Trace {
	out := New(t.Name)
	for _, e := range t.Events {
		if e.Kind == EvRef {
			out.AddRef(mem.Page(e.Arg))
		}
	}
	return out
}

// Summary renders a one-line description.
func (t *Trace) Summary() string {
	nd := 0
	for _, e := range t.Events {
		if e.Kind != EvRef {
			nd++
		}
	}
	return fmt.Sprintf("%s: R=%d references, V=%d distinct pages, %d directive events", t.Name, t.Refs, t.Distinct, nd)
}
