package trace

import (
	"bytes"
	"testing"

	"cdmm/internal/mem"
)

// refString flattens a source's page references through its cursor.
func refString(t *testing.T, src Source, opts CursorOpts) []mem.Page {
	t.Helper()
	cur := src.Blocks(opts)
	defer cur.Close()
	var out []mem.Page
	var b Block
	for cur.Next(&b) {
		out = append(out, b.Pages...)
		if b.HasDir {
			t.Fatalf("repeated stream produced a directive event %v", b.Dir)
		}
		if b.Sites != nil {
			t.Fatal("repeated stream produced a site column")
		}
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRepeatSource checks that Repeat concatenates the reference string
// n times, drops directives and sites, reports consistent totals, and
// that the repeated stream encodes to a CDT3 file the strict full
// decoder accepts with matching audit counters.
func TestRepeatSource(t *testing.T) {
	base := sitedSampleTrace()
	baseRefs := refStringOf(base)

	for _, n := range []int{1, 2, 5} {
		rep := Repeat(base, n)
		m := rep.Meta()
		if m.Refs != n*base.Refs || m.Events != m.Refs {
			t.Fatalf("n=%d: Meta refs=%d events=%d, want refs=%d events=refs",
				n, m.Refs, m.Events, n*base.Refs)
		}
		if m.Distinct != base.Distinct || m.MaxPage != base.maxPageSeen() {
			t.Fatalf("n=%d: Meta universe drifted: %+v", n, m)
		}
		if m.HasSites {
			t.Fatalf("n=%d: repeated stream claims a site column", n)
		}

		got := refString(t, rep, CursorOpts{})
		want := make([]mem.Page, 0, n*len(baseRefs))
		for i := 0; i < n; i++ {
			want = append(want, baseRefs...)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d refs streamed, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: ref %d = %d, want %d", n, i, got[i], want[i])
			}
		}

		// MaxBlock still caps block sizes through the repetition.
		cur := rep.Blocks(CursorOpts{MaxBlock: 7})
		var b Block
		total := 0
		for cur.Next(&b) {
			if len(b.Pages) > 7 {
				t.Fatalf("n=%d: block of %d refs exceeds MaxBlock=7", n, len(b.Pages))
			}
			total += len(b.Pages)
		}
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
		cur.Close()
		if total != len(want) {
			t.Fatalf("n=%d: capped cursor streamed %d refs, want %d", n, total, len(want))
		}

		// The repeated stream must encode to a CDT3 file the strict
		// whole-trace decoder (distinct audit included) accepts.
		var buf bytes.Buffer
		if _, err := WriteCDT3(&buf, rep, 64); err != nil {
			t.Fatalf("n=%d: WriteCDT3: %v", n, err)
		}
		tr, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: full decode of repeated CDT3: %v", n, err)
		}
		if tr.Refs != n*base.Refs || len(tr.Events) != tr.Refs {
			t.Fatalf("n=%d: decoded refs=%d events=%d", n, tr.Refs, len(tr.Events))
		}
		if tr.Distinct != base.Distinct {
			t.Fatalf("n=%d: decoded distinct=%d, want %d", n, tr.Distinct, base.Distinct)
		}
	}
}

// refStringOf extracts the page references of an in-memory trace row by
// row, independent of the cursor machinery under test.
func refStringOf(tr *Trace) []mem.Page {
	var out []mem.Page
	for _, e := range tr.Events {
		if e.Kind == EvRef {
			out = append(out, mem.Page(e.Arg))
		}
	}
	return out
}
