// CDT3: the columnar, chunked trace format. CDT1/CDT2 store the event
// stream row by row (kind byte + arg varint per event); CDT3 stores it
// column by column, extending the CDT2 side-band pattern to the events
// themselves:
//
//	magic "CDT3"
//	name            (uvarint length + bytes)
//	flags           (byte; bit0 = site column present)
//	events          (uvarint: total events, references + directives)
//	refs            (uvarint: R, page references)
//	distinct        (uvarint: V, distinct pages)
//	maxPage         (varint; -1 when there are no references)
//	alloc table     \
//	lock table       | identical to the CDT1 sections
//	unlock table    /
//	site table      (only when flagged; identical to the CDT2 section)
//	chunks…         (see below)
//	terminator      (uvarint 0)
//
// Each chunk frames a bounded slice of the stream:
//
//	n               (uvarint: events in the chunk; 0 terminates)
//	nRefs           (uvarint: page references in the chunk, ≤ n)
//	page column     (nRefs varints: zigzag delta from the previous
//	                 reference's page; the predecessor carries across
//	                 chunks and starts at 0)
//	dir column      (n−nRefs entries: uvarint gap — references since the
//	                 previous directive in the chunk, from the chunk
//	                 start for the first — then kind byte and arg varint)
//	site runs       (only when flagged: uvarint count, then per run
//	                 uvarint length + varint site, covering exactly the
//	                 chunk's n events)
//
// Numerical reference strings are runs of adjacent pages, so the delta
// column is mostly ±1 and encodes in one byte per reference; directives
// are rare, so the side-band costs nothing. Because every count is
// declared up front, a reader can replay a multi-GB file holding one
// chunk's columns at a time — that is what FileSource does.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"cdmm/internal/mem"
)

// DefaultChunkEvents is the chunk size WriteCDT3 uses when none is
// given: big enough to amortize framing, small enough that a streaming
// reader's working set stays in cache.
const DefaultChunkEvents = 1 << 16

// maxChunkEvents bounds the chunk size a reader will accept (and a
// writer will produce), so corrupt counts cannot balloon the O(chunk)
// decode buffers.
const maxChunkEvents = 1 << 24

// CDT3Stats breaks a written CDT3 file into its sections, for
// `cdmm convert -stat`.
type CDT3Stats struct {
	HeaderBytes int64 // magic, name, flags, totals
	TableBytes  int64 // alloc/lock/unlock (+ site) tables
	PageBytes   int64 // delta-encoded page columns
	DirBytes    int64 // directive side-band columns
	SiteBytes   int64 // RLE site-run columns
	FrameBytes  int64 // chunk count framing + terminator
	TotalBytes  int64
	Chunks      int
	Events      int
	Refs        int
}

// WriteCDT3 encodes any Source as a CDT3 stream. chunkEvents bounds the
// events per chunk (0 selects DefaultChunkEvents); the same source and
// chunk size always produce identical bytes, so re-encoding a decoded
// file round-trips exactly.
func WriteCDT3(w io.Writer, src Source, chunkEvents int) (int64, error) {
	return writeCDT3(w, src, chunkEvents, nil)
}

// WriteCDT3Stats is WriteCDT3 with a per-section byte breakdown.
func WriteCDT3Stats(w io.Writer, src Source, chunkEvents int, st *CDT3Stats) (int64, error) {
	return writeCDT3(w, src, chunkEvents, st)
}

func writeCDT3(w io.Writer, src Source, chunkEvents int, st *CDT3Stats) (int64, error) {
	if chunkEvents <= 0 {
		chunkEvents = DefaultChunkEvents
	}
	if chunkEvents > maxChunkEvents {
		chunkEvents = maxChunkEvents
	}
	meta := src.Meta()
	tb := src.Tables()
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}

	_ = cw.bytes([]byte(traceMagicV3))
	cw.str(meta.Name)
	var flags byte
	if meta.HasSites {
		flags |= 1
	}
	cw.byte(flags)
	cw.uvarint(uint64(meta.Events))
	cw.uvarint(uint64(meta.Refs))
	cw.uvarint(uint64(meta.Distinct))
	cw.varint(int64(meta.MaxPage))
	headerEnd := cw.n

	writeSideTables(cw, tb.Allocs, tb.LockSets, tb.UnlockSets)
	if meta.HasSites {
		writeSiteTable(cw, tb.Sites)
	}
	tablesEnd := cw.n

	enc := cdt3ChunkWriter{cw: cw, cap: chunkEvents, sites: meta.HasSites, st: st}
	cur := src.Blocks(CursorOpts{WithSites: meta.HasSites})
	defer cur.Close()
	var b Block
	for cur.Next(&b) {
		enc.addBlock(&b)
		if cw.err != nil {
			break
		}
	}
	if err := cur.Err(); err != nil {
		return cw.n, err
	}
	enc.flush()
	frameStart := cw.n
	cw.uvarint(0)

	if cw.err != nil {
		return cw.n, cw.err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	if st != nil {
		st.HeaderBytes = headerEnd
		st.TableBytes = tablesEnd - headerEnd
		st.FrameBytes += cw.n - frameStart
		st.TotalBytes = cw.n
		st.Events = meta.Events
		st.Refs = meta.Refs
	}
	return cw.n, nil
}

// chunkDir is one buffered directive: ev executes after the chunk's
// first refsBefore references.
type chunkDir struct {
	refsBefore int32
	ev         Event
}

// cdt3ChunkWriter accumulates blocks into bounded chunks and flushes
// each as one framed columnar record.
type cdt3ChunkWriter struct {
	cw    *countWriter
	cap   int
	sites bool
	st    *CDT3Stats

	pages    []mem.Page
	dirs     []chunkDir
	runs     []siteRun
	prevPage int64 // carries across chunks
}

func (e *cdt3ChunkWriter) events() int { return len(e.pages) + len(e.dirs) }

func (e *cdt3ChunkWriter) addBlock(b *Block) {
	for i, pg := range b.Pages {
		if e.events() >= e.cap {
			e.flush()
		}
		e.pages = append(e.pages, pg)
		if e.sites {
			site := NoSite
			if b.Sites != nil {
				site = b.Sites[i]
			}
			e.noteRun(site)
		}
	}
	if b.HasDir {
		if e.events() >= e.cap {
			e.flush()
		}
		e.dirs = append(e.dirs, chunkDir{refsBefore: int32(len(e.pages)), ev: b.Dir})
		if e.sites {
			e.noteRun(b.DirSite)
		}
	}
}

// noteRun extends the chunk's site column by one event.
func (e *cdt3ChunkWriter) noteRun(site int32) {
	if last := len(e.runs) - 1; last >= 0 && e.runs[last].site == site &&
		e.runs[last].n < math.MaxInt32 {
		e.runs[last].n++
		return
	}
	e.runs = append(e.runs, siteRun{n: 1, site: site})
}

func (e *cdt3ChunkWriter) flush() {
	n := e.events()
	if n == 0 {
		return
	}
	cw := e.cw
	mark := cw.n
	cw.uvarint(uint64(n))
	cw.uvarint(uint64(len(e.pages)))
	if e.st != nil {
		e.st.FrameBytes += cw.n - mark
		e.st.Chunks++
		mark = cw.n
	}
	for _, pg := range e.pages {
		cw.varint(int64(pg) - e.prevPage)
		e.prevPage = int64(pg)
	}
	if e.st != nil {
		e.st.PageBytes += cw.n - mark
		mark = cw.n
	}
	prevRefs := int32(0)
	for _, d := range e.dirs {
		cw.uvarint(uint64(d.refsBefore - prevRefs))
		cw.byte(byte(d.ev.Kind))
		cw.varint(int64(d.ev.Arg))
		prevRefs = d.refsBefore
	}
	if e.st != nil {
		e.st.DirBytes += cw.n - mark
		mark = cw.n
	}
	if e.sites {
		cw.uvarint(uint64(len(e.runs)))
		for _, r := range e.runs {
			cw.uvarint(uint64(r.n))
			cw.varint(int64(r.site))
		}
		if e.st != nil {
			e.st.SiteBytes += cw.n - mark
		}
	}
	e.pages = e.pages[:0]
	e.dirs = e.dirs[:0]
	e.runs = e.runs[:0]
}

// --- header ---------------------------------------------------------

// cdt3Header is the decoded fixed part of a CDT3 file.
type cdt3Header struct {
	name     string
	hasSites bool
	events   int64
	refs     int64
	distinct int64
	maxPage  mem.Page
	allocs   []AllocDirective
	locks    []LockSet
	unlocks  [][]mem.Page
	sites    []Site
}

// readCDT3Header decodes everything before the chunk stream. The magic
// has already been consumed.
func readCDT3Header(cr *countReader) (*cdt3Header, error) {
	h := &cdt3Header{}
	h.name = cr.str()
	flags := cr.byte()
	if cr.err != nil {
		return nil, decodeErr("header", -1, cr.err)
	}
	if flags&^1 != 0 {
		return nil, decodeErr("header", -1, fmt.Errorf("unknown flags %#x", flags))
	}
	h.hasSites = flags&1 != 0
	events := cr.uvarint()
	refs := cr.uvarint()
	distinct := cr.uvarint()
	maxPage := cr.varint()
	if cr.err != nil {
		return nil, decodeErr("header", -1, cr.err)
	}
	const maxTotal = math.MaxInt64 / 4
	if events > maxTotal || refs > events || distinct > refs {
		return nil, decodeErr("header", -1, fmt.Errorf("inconsistent totals events=%d refs=%d distinct=%d", events, refs, distinct))
	}
	if maxPage < -1 || maxPage > math.MaxInt32 {
		return nil, decodeErr("header", -1, fmt.Errorf("max page %d out of range", maxPage))
	}
	if (refs == 0) != (maxPage == -1) {
		return nil, decodeErr("header", -1, fmt.Errorf("refs=%d with max page %d", refs, maxPage))
	}
	h.events, h.refs, h.distinct = int64(events), int64(refs), int64(distinct)
	h.maxPage = mem.Page(maxPage)

	var err error
	h.allocs, h.locks, h.unlocks, err = readSideTables(cr)
	if err != nil {
		return nil, err
	}
	if h.hasSites {
		h.sites, err = readSiteTable(cr)
		if err != nil {
			return nil, err
		}
	}
	return h, nil
}

func (h *cdt3Header) sideLen(kind EventKind) int {
	switch kind {
	case EvAlloc:
		return len(h.allocs)
	case EvLock:
		return len(h.locks)
	default:
		return len(h.unlocks)
	}
}

// --- chunk reader ---------------------------------------------------

// cdt3ChunkReader decodes the chunk stream one chunk at a time,
// validating every count against the header. It is shared by the full
// decoder (readCDT3) and the streaming cursor (fileCursor).
type cdt3ChunkReader struct {
	cr  *countReader
	hdr *cdt3Header

	// Decoded current chunk; buffers are reused across chunks.
	pages []mem.Page
	dirs  []chunkDir
	runs  []siteRun

	prevPage int64
	seenEv   int64
	seenRefs int64
	chunk    int64 // index of the chunk being decoded, for errors
	done     bool
	err      error
}

// next decodes the next chunk into the reused buffers, returning false
// at the terminator or on error (check err).
func (d *cdt3ChunkReader) next() bool {
	if d.done || d.err != nil {
		return false
	}
	cr := d.cr
	n := cr.uvarint()
	if cr.err != nil {
		d.fail(decodeErr("chunk", d.chunk, cr.err))
		return false
	}
	if n == 0 {
		if d.seenEv != d.hdr.events || d.seenRefs != d.hdr.refs {
			d.fail(decodeErr("chunk", d.chunk, fmt.Errorf("stream holds %d events / %d refs, header declares %d / %d",
				d.seenEv, d.seenRefs, d.hdr.events, d.hdr.refs)))
			return false
		}
		d.done = true
		return false
	}
	if n > maxChunkEvents {
		d.fail(decodeErr("chunk", d.chunk, fmt.Errorf("chunk of %d events exceeds limit %d", n, maxChunkEvents)))
		return false
	}
	nRefs := cr.uvarint()
	if cr.err != nil {
		d.fail(decodeErr("chunk", d.chunk, cr.err))
		return false
	}
	if nRefs > n {
		d.fail(decodeErr("chunk", d.chunk, fmt.Errorf("%d refs in chunk of %d events", nRefs, n)))
		return false
	}
	if d.seenEv+int64(n) > d.hdr.events || d.seenRefs+int64(nRefs) > d.hdr.refs {
		d.fail(decodeErr("chunk", d.chunk, fmt.Errorf("chunk overruns header totals")))
		return false
	}

	d.pages = d.pages[:0]
	for i := uint64(0); i < nRefs; i++ {
		pg := d.prevPage + cr.varint()
		if cr.err != nil {
			d.fail(decodeErr("page column", int64(i), cr.err))
			return false
		}
		if pg < 0 || pg > int64(d.hdr.maxPage) {
			d.fail(decodeErr("page column", int64(i), fmt.Errorf("page %d outside [0, %d]", pg, d.hdr.maxPage)))
			return false
		}
		d.prevPage = pg
		d.pages = append(d.pages, mem.Page(pg))
	}

	d.dirs = d.dirs[:0]
	nDirs := n - nRefs
	pos := int64(0)
	for i := uint64(0); i < nDirs; i++ {
		gap := cr.uvarint()
		kind := EventKind(cr.byte())
		arg := cr.varint31()
		if cr.err != nil {
			d.fail(decodeErr("dir column", int64(i), cr.err))
			return false
		}
		pos += int64(gap)
		if pos > int64(nRefs) {
			d.fail(decodeErr("dir column", int64(i), fmt.Errorf("directive at ref %d of %d", pos, nRefs)))
			return false
		}
		switch kind {
		case EvAlloc, EvLock, EvUnlock:
		default:
			d.fail(decodeErr("dir column", int64(i), fmt.Errorf("unknown kind %d", kind)))
			return false
		}
		if arg < 0 || int(arg) >= d.hdr.sideLen(kind) {
			d.fail(decodeErr("dir column", int64(i), fmt.Errorf("%v index %d out of range", kind, arg)))
			return false
		}
		d.dirs = append(d.dirs, chunkDir{refsBefore: int32(pos), ev: Event{Kind: kind, Arg: int32(arg)}})
	}

	d.runs = d.runs[:0]
	if d.hdr.hasSites {
		nRuns := cr.uvarint()
		if cr.err == nil && nRuns > n {
			cr.err = fmt.Errorf("%d site runs in chunk of %d events", nRuns, n)
		}
		var total int64
		for i := uint64(0); i < nRuns && cr.err == nil; i++ {
			rn := cr.varint31u()
			site := cr.varint31()
			if cr.err != nil {
				break
			}
			if rn == 0 {
				cr.err = fmt.Errorf("empty site run")
				break
			}
			if int32(site) != NoSite && (site < 0 || int(site) >= len(d.hdr.sites)) {
				cr.err = fmt.Errorf("site %d of %d", site, len(d.hdr.sites))
				break
			}
			total += int64(rn)
			d.runs = append(d.runs, siteRun{n: int32(rn), site: int32(site)})
		}
		if cr.err == nil && total != int64(n) {
			cr.err = fmt.Errorf("site runs cover %d of %d events", total, n)
		}
		if cr.err != nil {
			d.fail(decodeErr("site runs", d.chunk, cr.err))
			return false
		}
	}

	d.seenEv += int64(n)
	d.seenRefs += int64(nRefs)
	d.chunk++
	return true
}

func (d *cdt3ChunkReader) fail(err error) {
	d.err = err
	d.done = true
}

// --- full decode ----------------------------------------------------

// readCDT3 materializes a CDT3 stream as an in-memory Trace, for Read
// and for format conversion. The magic has already been consumed.
func readCDT3(cr *countReader) (*Trace, error) {
	hdr, err := readCDT3Header(cr)
	if err != nil {
		return nil, err
	}
	t := New(hdr.name)
	t.Allocs, t.LockSets, t.UnlockSets = hdr.allocs, hdr.locks, hdr.unlocks
	t.Sites = hdr.sites
	t.Events = make([]Event, 0, hdr.events)

	d := cdt3ChunkReader{cr: cr, hdr: hdr}
	for d.next() {
		di := 0
		for i := 0; i <= len(d.pages); i++ {
			for ; di < len(d.dirs) && int(d.dirs[di].refsBefore) == i; di++ {
				t.Events = append(t.Events, d.dirs[di].ev)
			}
			if i < len(d.pages) {
				t.AddRef(d.pages[i])
			}
		}
		for _, r := range d.runs {
			t.appendSiteRun(r.n, r.site)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if int64(t.Distinct) != hdr.distinct {
		return nil, decodeErr("chunk", -1, fmt.Errorf("stream references %d distinct pages, header declares %d", t.Distinct, hdr.distinct))
	}
	if t.maxPageSeen() != hdr.maxPage {
		return nil, decodeErr("chunk", -1, fmt.Errorf("stream max page %d, header declares %d", t.maxPageSeen(), hdr.maxPage))
	}
	if hdr.hasSites {
		t.sitesOn = true
		t.curSite = NoSite
		if err := t.auditSiteRuns(); err != nil {
			return nil, decodeErr("site runs", -1, err)
		}
	}
	return t, nil
}

// --- streaming file source ------------------------------------------

// FileSource replays a CDT3 file in O(chunk) memory: the header and
// side tables are decoded once at open, and each cursor walks the chunk
// stream holding one chunk's columns at a time. It never materializes
// []Event. The descriptor opened by OpenCDT3 is shared by all cursors —
// each reads through its own io.SectionReader (positionless ReadAt), so
// concurrent replays never contend on a seek offset — and retired
// cursors park in a pool with their decode buffers, so repeated replays
// re-walk the file without reallocating them.
type FileSource struct {
	path    string
	f       *os.File
	size    int64
	meta    Meta
	tables  SideTables
	hdr     *cdt3Header
	dataOff int64     // file offset of the first chunk
	pool    sync.Pool // retired *fileCursor, decode buffers warm
}

// OpenCDT3 opens path as a streaming CDT3 source, decoding the header
// and side tables eagerly (so Meta and Tables are O(1)) and nothing
// else. The returned source keeps the descriptor open for its cursors;
// Close releases it (an unclosed source's descriptor is reclaimed by
// the *os.File finalizer).
func OpenCDT3(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		f.Close()
		return nil, decodeErr("magic", -1, err)
	}
	if string(magic[:]) != traceMagicV3 {
		f.Close()
		return nil, decodeErr("magic", -1, fmt.Errorf("bad magic %q (want %q)", magic[:], traceMagicV3))
	}
	return openCDT3(f, path)
}

// openCDT3 reads the header from f, positioned just past the magic. It
// takes ownership of f: the source keeps it on success, and it is
// closed on error.
func openCDT3(f *os.File, path string) (*FileSource, error) {
	cr := &countReader{r: bufio.NewReader(f)}
	hdr, err := readCDT3Header(cr)
	if err != nil {
		f.Close()
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileSource{
		path: path,
		f:    f,
		size: fi.Size(),
		meta: Meta{
			Name:     hdr.name,
			Events:   int(hdr.events),
			Refs:     int(hdr.refs),
			Distinct: int(hdr.distinct),
			MaxPage:  hdr.maxPage,
			HasSites: hdr.hasSites,
		},
		tables: SideTables{
			Allocs:     hdr.allocs,
			LockSets:   hdr.locks,
			UnlockSets: hdr.unlocks,
			Sites:      hdr.sites,
		},
		hdr:     hdr,
		dataOff: int64(len(traceMagicV3)) + cr.n,
	}, nil
}

// OpenSource opens a trace file of any format as a Source: CDT3 files
// stream (FileSource); CDT1/CDT2 files decode fully into a Trace.
func OpenSource(path string) (Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		f.Close()
		return nil, decodeErr("magic", -1, err)
	}
	if string(magic[:]) == traceMagicV3 {
		return openCDT3(f, path) // takes ownership of f
	}
	defer f.Close()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return Read(f)
}

// Meta implements Source.
func (s *FileSource) Meta() Meta { return s.meta }

// Tables implements Source.
func (s *FileSource) Tables() *SideTables { return &s.tables }

// Close releases the shared descriptor. Cursors opened before Close
// keep working only until their buffered reader drains; walks started
// after Close fail with the file-closed error. Close is idempotent in
// the os.File sense (the second call returns os.ErrClosed).
func (s *FileSource) Close() error { return s.f.Close() }

// Blocks implements Source. Cursors read the shared descriptor through
// an io.SectionReader (positionless ReadAt), so concurrent replays do
// not share a read position, and the cursor itself — bufio reader plus
// chunk decode buffers — is recycled through the source's pool: a
// steady-state re-walk of the file costs one SectionReader, not a
// reopened descriptor and freshly grown chunk columns.
func (s *FileSource) Blocks(opts CursorOpts) Cursor {
	sec := io.NewSectionReader(s.f, s.dataOff, s.size-s.dataOff)
	c, _ := s.pool.Get().(*fileCursor)
	if c == nil {
		c = &fileCursor{br: bufio.NewReader(sec)}
	} else {
		c.br.Reset(sec)
	}
	c.src = s
	c.cr = countReader{r: c.br}
	d := &c.dec
	pages, dirs, runs := d.pages[:0], d.dirs[:0], d.runs[:0]
	*d = cdt3ChunkReader{cr: &c.cr, hdr: s.hdr, pages: pages, dirs: dirs, runs: runs}
	c.ri, c.di = 0, 0
	c.max = opts.MaxBlock
	c.withSites = opts.WithSites && s.meta.HasSites
	c.siteCur = SiteCursor{}
	c.closed = false
	return c
}

var _ Source = (*FileSource)(nil)

// fileCursor serves blocks out of one decoded chunk at a time.
type fileCursor struct {
	src *FileSource
	br  *bufio.Reader
	cr  countReader
	dec cdt3ChunkReader

	ri, di int // consumed refs/dirs of the current chunk

	max       int
	withSites bool
	siteCur   SiteCursor // over the current chunk's runs
	siteBuf   []int32
	closed    bool
}

// Next implements Cursor.
func (c *fileCursor) Next(b *Block) bool {
	b.Pages = nil
	b.Sites = nil
	b.HasDir = false
	b.DirSite = NoSite
	if c.closed || c.dec.err != nil {
		return false
	}
	for c.ri >= len(c.dec.pages) && c.di >= len(c.dec.dirs) {
		if !c.dec.next() {
			return false
		}
		c.ri, c.di = 0, 0
		if c.withSites {
			c.siteCur = SiteCursor{runs: c.dec.runs}
		}
	}
	hi := len(c.dec.pages)
	dirNext := false
	if c.di < len(c.dec.dirs) {
		hi = int(c.dec.dirs[c.di].refsBefore)
		dirNext = true
	}
	if c.max > 0 && hi-c.ri > c.max {
		hi = c.ri + c.max
		dirNext = false
	}
	b.Pages = c.dec.pages[c.ri:hi]
	if c.withSites {
		b.Sites = c.fillSites(len(b.Pages))
	}
	c.ri = hi
	if dirNext {
		b.HasDir = true
		b.Dir = c.dec.dirs[c.di].ev
		if c.withSites {
			b.DirSite = c.siteCur.Next()
		}
		c.di++
	}
	return true
}

func (c *fileCursor) fillSites(n int) []int32 {
	if cap(c.siteBuf) < n {
		c.siteBuf = make([]int32, n)
	}
	buf := c.siteBuf[:n]
	for i := range buf {
		buf[i] = c.siteCur.Next()
	}
	return buf
}

// Err implements Cursor.
func (c *fileCursor) Err() error { return c.dec.err }

// Close implements Cursor: the cursor is parked in the source's pool
// (decode buffers intact) for the next Blocks call to reuse. The shared
// descriptor stays open — it belongs to the FileSource.
func (c *fileCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.src != nil {
		c.src.pool.Put(c)
	}
	return nil
}

var _ Cursor = (*fileCursor)(nil)
