package sweep

import (
	"cdmm/internal/mem"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
	"cdmm/internal/vmsim"
)

// Multi replays one reference stream through a whole vector of policies
// in lockstep: a single cursor decodes each block once, every policy
// block-steps it, and the closing directive (if any) is resolved against
// the side tables once and applied to each policy. Per-policy results
// are exactly those of len(pols) independent replays — the decisions of
// each policy are untouched by the grouping — but the stream decode,
// directive resolution and page-id translation are paid once for the
// grid instead of once per cell. This is the grouped pass behind FIFO
// capacity grids and CD detune grids, which have no closed-form curve.
//
// Policies must implement policy.BlockStepper (all the fixed built-ins
// do); each policy value must be exclusive to this call.
func Multi(src trace.Source, pols []policy.Policy) ([]vmsim.Result, error) {
	meta := src.Meta()
	tb := src.Tables()
	steppers := make([]policy.BlockStepper, len(pols))
	outs := make([]policy.BlockResult, len(pols))
	for i, pol := range pols {
		pol.Reset()
		hintPolicyPages(meta, pol)
		bst, ok := pol.(policy.BlockStepper)
		if !ok {
			// Per-reference fallback keeps Multi total; wrap the single
			// stepper in a one-policy block loop.
			bst = fallbackStepper{pol}
		}
		steppers[i] = bst
	}

	cur := src.Blocks(trace.CursorOpts{})
	defer cur.Close()
	var b trace.Block
	for cur.Next(&b) {
		for i, bst := range steppers {
			bst.StepBlock(b.Pages, &outs[i])
		}
		if b.HasDir {
			for _, pol := range pols {
				applyDir(pol, tb, b.Dir)
			}
		}
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}

	results := make([]vmsim.Result, len(pols))
	for i, pol := range pols {
		results[i] = resultOf(pol, meta.Refs, &outs[i])
	}
	return results, nil
}

// FIFOCurve replays the stream under FIFO at every capacity in caps via
// one lockstep traversal. FIFO is not a stack algorithm (Bélády's
// anomaly: faults are not monotone in capacity), so there is no
// closed-form curve; the grouped pass shares the stream decode instead.
func FIFOCurve(src trace.Source, caps []int) ([]vmsim.Result, error) {
	pols := make([]policy.Policy, len(caps))
	for i, m := range caps {
		pols[i] = policy.NewFIFO(m)
	}
	return Multi(src, pols)
}

// applyDir feeds a block-closing directive event to the policy, exactly
// as vmsim's block loop does.
func applyDir(pol policy.Policy, tb *trace.SideTables, e trace.Event) {
	switch e.Kind {
	case trace.EvAlloc:
		pol.Alloc(tb.Alloc(e))
	case trace.EvLock:
		pol.Lock(tb.Lock(e))
	case trace.EvUnlock:
		pol.Unlock(tb.Unlock(e))
	}
}

// hintPolicyPages pre-sizes a policy's dense page-indexed state from the
// stream's page universe, seeing through Unwrap wrappers.
func hintPolicyPages(meta trace.Meta, pol policy.Policy) {
	for p := pol; p != nil; {
		if h, ok := p.(policy.PageHinter); ok {
			h.HintPages(meta.MaxPage, meta.Distinct)
			return
		}
		u, ok := p.(interface{ Unwrap() policy.Policy })
		if !ok {
			return
		}
		p = u.Unwrap()
	}
}

// fallbackStepper adapts a per-reference policy to the block interface
// with the exact accounting of vmsim's per-reference loop.
type fallbackStepper struct{ pol policy.Policy }

func (f fallbackStepper) StepBlock(pages []mem.Page, out *policy.BlockResult) {
	charger, _ := f.pol.(policy.Charger)
	for _, pg := range pages {
		fault := f.pol.Ref(pg)
		dt := int64(1)
		if fault {
			out.Faults++
			dt += policy.FaultService
		}
		m := f.pol.Resident()
		if m > out.MaxResident {
			out.MaxResident = m
		}
		if charger != nil {
			m = charger.Charged()
		}
		out.VTime += dt
		out.SpaceTime += int64(m) * dt
		out.MemSum += int64(m)
	}
}
