package sweep_test

import (
	"testing"

	"cdmm/internal/mem"
	"cdmm/internal/policy"
	"cdmm/internal/sweep"
	"cdmm/internal/trace"
	"cdmm/internal/vmsim"
)

// FuzzSweep feeds arbitrary byte strings as reference traces plus a
// fuzzer-chosen τ/capacity and checks the one-pass curve engines against
// per-cell replay. Any divergence is a real bug in one of the engines.
func FuzzSweep(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 0, 3, 3, 2, 1, 0}, uint8(3))
	f.Add([]byte{5, 5, 5, 5}, uint8(1))
	f.Add([]byte{0}, uint8(200))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(7))
	f.Fuzz(func(t *testing.T, refs []byte, knob uint8) {
		if len(refs) == 0 || len(refs) > 4096 {
			return
		}
		tr := trace.New("fuzz")
		for _, b := range refs {
			tr.AddRef(mem.Page(b % 64))
		}

		lru, err := sweep.NewLRU(tr)
		if err != nil {
			t.Fatal(err)
		}
		m := int(knob)%lru.V + 1
		cell := vmsim.Run(tr.StripDirectives(), policy.NewLRU(m))
		if got := lru.Result(m); got != cell {
			t.Fatalf("LRU m=%d: curve %+v != cell %+v", m, got, cell)
		}

		ws, err := sweep.NewWS(tr)
		if err != nil {
			t.Fatal(err)
		}
		tau := int(knob) + 1
		curve, err := ws.Run(tau)
		if err != nil {
			t.Fatal(err)
		}
		wsCell := vmsim.Run(tr.RefsOnly(), policy.NewWS(tau))
		if curve != wsCell {
			t.Fatalf("WS tau=%d: curve %+v != cell %+v", tau, curve, wsCell)
		}
		if got := ws.Faults(tau); got != wsCell.Faults {
			t.Fatalf("WS tau=%d: histogram faults %d != cell %d", tau, got, wsCell.Faults)
		}

		caps := []int{1, m}
		fifo, err := sweep.FIFOCurve(tr, caps)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range caps {
			if cell := vmsim.Run(tr, policy.NewFIFO(c)); fifo[i] != cell {
				t.Fatalf("FIFO m=%d: lockstep %+v != cell %+v", c, fifo[i], cell)
			}
		}
	})
}
