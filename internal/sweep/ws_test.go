package sweep_test

import (
	"math"
	"testing"
	"testing/quick"

	"cdmm/internal/policy"
	"cdmm/internal/sweep"
	"cdmm/internal/vmsim"
)

var wsTaus = []int{1, 2, 3, 5, 10, 25, 80, 300, 2500}

func TestWSHistogramsMatchBrute(t *testing.T) {
	tr := randomTrace(5, 3000, 40)
	s := mustWS(t, tr)
	for _, tau := range wsTaus {
		b := vmsim.Run(tr.RefsOnly(), policy.NewWS(tau))
		if got := s.Faults(tau); got != b.Faults {
			t.Errorf("tau=%d: faults %d != brute %d", tau, got, b.Faults)
		}
		if got := s.MemSum(tau); got != b.MemSum {
			t.Errorf("tau=%d: MemSum %v != brute %v", tau, got, b.MemSum)
		}
		if got := s.MEM(tau); math.Abs(got-b.MEM()) > 1e-9 {
			t.Errorf("tau=%d: MEM %v != brute %v", tau, got, b.MEM())
		}
	}
}

// TestWSCurveMatchesBrute checks the event-driven grid engine produces
// the complete per-τ Result — including the fault-coupled space-time
// integral and the working-set peak — identically to one replay per τ.
func TestWSCurveMatchesBrute(t *testing.T) {
	tr := randomTrace(9, 3000, 40)
	s := mustWS(t, tr)
	got, err := s.Curve(wsTaus)
	if err != nil {
		t.Fatal(err)
	}
	for i, tau := range wsTaus {
		b := vmsim.Run(tr.RefsOnly(), policy.NewWS(tau))
		if got[i] != b {
			t.Errorf("tau=%d:\n curve %+v\n brute %+v", tau, got[i], b)
		}
	}
}

func TestWSCurvePropertyRandom(t *testing.T) {
	f := func(seed uint16, rawTau uint8) bool {
		tr := randomTrace(uint64(seed)+1, 500, 20)
		s, err := sweep.NewWS(tr)
		if err != nil {
			return false
		}
		taus := []int{1, int(rawTau)/4 + 1, int(rawTau) + 1, 3 * int(rawTau), 600}
		got, err := s.Curve(taus)
		if err != nil {
			return false
		}
		for i, tau := range taus {
			if tau < 1 {
				tau = 1
			}
			if got[i] != vmsim.Run(tr.RefsOnly(), policy.NewWS(tau)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestWSCurveDegenerate covers the grid-engine corners: τ covering the
// whole trace (nothing ever expires), τ = 1 (everything expires next
// step), duplicate and unsorted grids, single-page traces.
func TestWSCurveDegenerate(t *testing.T) {
	tr := randomTrace(13, 200, 6)
	s := mustWS(t, tr)
	grids := [][]int{
		{1},
		{200, 1, 200, 7, 1},
		{100000},
		{1, 2, 3, 4, 5, 6, 7, 8},
	}
	for _, taus := range grids {
		got, err := s.Curve(taus)
		if err != nil {
			t.Fatal(err)
		}
		for i, tau := range taus {
			b := vmsim.Run(tr.RefsOnly(), policy.NewWS(tau))
			if got[i] != b {
				t.Fatalf("grid %v tau=%d: %+v != %+v", taus, tau, got[i], b)
			}
		}
	}

	one := randomTrace(1, 50, 1)
	so := mustWS(t, one)
	for _, tau := range []int{1, 3, 50} {
		got, err := so.Run(tau)
		if err != nil {
			t.Fatal(err)
		}
		if b := vmsim.Run(one.RefsOnly(), policy.NewWS(tau)); got != b {
			t.Fatalf("single-page tau=%d: %+v != %+v", tau, got, b)
		}
	}
}

func TestWSRunCaches(t *testing.T) {
	tr := randomTrace(21, 800, 15)
	s := mustWS(t, tr)
	a, err := s.Run(37)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(37)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("cache returned a different result: %+v vs %+v", a, b)
	}
}

func TestWSTauForMEM(t *testing.T) {
	tr := randomTrace(17, 2500, 30)
	s := mustWS(t, tr)
	for _, target := range []float64{1.0, 2.5, 4.0, 8.0, s.MEM(40)} {
		tau := s.TauForMEM(target)
		got := s.MEM(tau)
		// No neighbouring τ may be meaningfully closer to the target.
		for _, other := range []int{tau - 1, tau + 1} {
			if other < 1 {
				continue
			}
			if math.Abs(s.MEM(other)-target) < math.Abs(got-target)-1e-12 {
				t.Errorf("target %v: τ=%d closer than chosen τ=%d", target, other, tau)
			}
		}
	}
}

func TestWSMinTauForFaults(t *testing.T) {
	tr := randomTrace(23, 2500, 30)
	s := mustWS(t, tr)
	target := s.Faults(100)
	tau, ok := s.MinTauForFaults(target)
	if !ok {
		t.Fatal("achievable target reported unachievable")
	}
	if s.Faults(tau) > target {
		t.Errorf("tau=%d faults %d exceed target %d", tau, s.Faults(tau), target)
	}
	if tau > 1 && s.Faults(tau-1) <= target {
		t.Errorf("tau=%d is not minimal", tau)
	}
}

// TestWSMinSTMatchesLadderScan pins MinST to the reference definition: a
// strict-< scan of full replays over the default τ ladder, in ladder
// order.
func TestWSMinSTMatchesLadderScan(t *testing.T) {
	tr := randomTrace(29, 2000, 25)
	s := mustWS(t, tr)
	tau, res, err := s.MinST()
	if err != nil {
		t.Fatal(err)
	}
	bestTau, best := 0, vmsim.Result{SpaceTime: math.Inf(1)}
	for _, tt := range vmsim.DefaultTaus(tr.Refs) {
		r := vmsim.Run(tr.RefsOnly(), policy.NewWS(tt))
		if r.SpaceTime < best.SpaceTime {
			bestTau, best = tt, r
		}
	}
	if tau != bestTau || res != best {
		t.Fatalf("MinST (%d, %+v) != ladder scan (%d, %+v)", tau, res, bestTau, best)
	}
}
