// Package sweep is the one-pass curve plane: whole miss-ratio and
// working-set curves from a single traversal of a reference stream,
// where per-cell simulation would replay the trace once per curve point.
//
// Three engines ride the block-stepped trace plane (trace.Source):
//
//   - LRUCurve: Mattson's stack algorithm over a Fenwick tree of
//     reference positions. One traversal yields the exact reuse-distance
//     histogram, hence PF/MEM/ST for *every* LRU allocation m in [1, V].
//     Periodic position compression bounds the tree at O(V) regardless
//     of stream length, so multi-GB CDT3 files sweep in bounded memory.
//
//   - WS: Denning's windowed recurrence. One pass builds the backward
//     inter-reference-interval and forward re-reference-distance
//     histograms (PF(τ) and MemSum(τ) for all τ at once); a second
//     event-driven pass steps an arbitrary τ grid in lockstep — each
//     reference schedules one lazy expiry chain that walks the grid as
//     the page ages — producing the exact per-τ Result (including the
//     fault-coupled space-time integral) in O(R + Σ_τ activity) instead
//     of O(R × |grid|).
//
//   - Multi: a lockstep grouped pass for policies with no closed form
//     (FIFO capacity grids, CD detune grids). One cursor feeds every
//     policy's StepBlock per block, so the stream decode and directive
//     side-band resolution are shared across the whole grid while each
//     policy's per-reference decisions stay exactly those of a solo
//     replay.
//
// Every engine is differentially tested against per-cell vmsim replay;
// the per-cell path remains available (engine cell mode, vmsim.SweepLRU/
// SweepWS) as the oracle.
package sweep

import (
	"cdmm/internal/mem"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
	"cdmm/internal/vmsim"
)

// walkRefs streams the source's reference string through fn block by
// block, ignoring directive events (the closed-form engines model
// directive-blind policies, matching their per-cell oracles which replay
// the directive-free view).
func walkRefs(src trace.Source, fn func(pages []mem.Page)) error {
	cur := src.Blocks(trace.CursorOpts{})
	defer cur.Close()
	var b trace.Block
	for cur.Next(&b) {
		fn(b.Pages)
	}
	return cur.Err()
}

// resultOf converts one policy's accumulated block indexes into the
// common Result form, exactly as vmsim's block loop does.
func resultOf(pol policy.Policy, refs int, out *policy.BlockResult) vmsim.Result {
	res := vmsim.Result{
		Policy:      pol.Name(),
		Refs:        refs,
		Faults:      out.Faults,
		MaxResident: out.MaxResident,
		VirtualTime: out.VTime,
		SpaceTime:   float64(out.SpaceTime),
		MemSum:      float64(out.MemSum),
	}
	if cd := policy.AsCD(pol); cd != nil {
		res.SwapSignals = cd.SwapSignals
		res.LockReleases = cd.LockReleases
		res.Degraded = cd.Degraded()
		res.DegradedReason = cd.DegradedReason()
	}
	return res
}
