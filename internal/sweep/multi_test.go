package sweep_test

import (
	"testing"

	"cdmm/internal/policy"
	"cdmm/internal/sweep"
	"cdmm/internal/vmsim"
	"cdmm/internal/workloads"
)

func TestFIFOCurveMatchesSeparateRuns(t *testing.T) {
	tr := randomTrace(31, 3000, 40)
	caps := []int{1, 2, 3, 5, 8, 13, 21, 34}
	got, err := sweep.FIFOCurve(tr, caps)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range caps {
		b := vmsim.Run(tr, policy.NewFIFO(m))
		if got[i] != b {
			t.Errorf("m=%d: lockstep %+v != solo %+v", m, got[i], b)
		}
	}
}

func TestMultiLRUWSMixMatchesSeparateRuns(t *testing.T) {
	tr := randomTrace(37, 2500, 30)
	mk := func() []policy.Policy {
		return []policy.Policy{
			policy.NewLRU(4), policy.NewLRU(12),
			policy.NewFIFO(7),
			policy.NewWS(50), policy.NewWS(500),
		}
	}
	got, err := sweep.Multi(tr, mk())
	if err != nil {
		t.Fatal(err)
	}
	for i, pol := range mk() {
		b := vmsim.Run(tr, pol)
		if got[i] != b {
			t.Errorf("%s: lockstep %+v != solo %+v", b.Policy, got[i], b)
		}
	}
}

// TestMultiCDDetuneMatchesSeparateRuns pins the CD detune grid: every
// workload's directive-carrying trace replayed under a grid of detuned
// CD policies in lockstep must equal the per-factor solo replays,
// including the CD-only counters (swap signals, lock releases,
// degradation).
func TestMultiCDDetuneMatchesSeparateRuns(t *testing.T) {
	for _, prog := range workloads.All() {
		c, err := workloads.Compile(prog)
		if err != nil {
			t.Fatalf("%s: %v", prog.Name, err)
		}
		set := prog.DefaultSet()
		minAlloc := c.V()
		factors := []float64{0.25, 0.5, 1.0, 2.0}
		pols := make([]policy.Policy, len(factors))
		for i, f := range factors {
			pols[i] = policy.NewCD(set.Selector(), int(float64(minAlloc)*f))
		}
		got, err := sweep.Multi(c.Trace, pols)
		if err != nil {
			t.Fatalf("%s: %v", prog.Name, err)
		}
		for i, f := range factors {
			solo := vmsim.Run(c.Trace, policy.NewCD(set.Selector(), int(float64(minAlloc)*f)))
			if got[i] != solo {
				t.Errorf("%s factor=%v:\n lockstep %+v\n solo     %+v", prog.Name, f, got[i], solo)
			}
		}
	}
}

// TestWorkloadCurvesMatchCells is the nine-workload differential: the
// one-pass LRU and WS curves must agree with per-cell replay at sampled
// capacities and windows on every compiled program trace.
func TestWorkloadCurvesMatchCells(t *testing.T) {
	for _, prog := range workloads.All() {
		c, err := workloads.Compile(prog)
		if err != nil {
			t.Fatalf("%s: %v", prog.Name, err)
		}
		lru := mustLRU(t, c.Trace)
		for _, m := range []int{1, 2, lru.V / 2, lru.V} {
			if m < 1 {
				m = 1
			}
			b := vmsim.Run(c.Trace.StripDirectives(), policy.NewLRU(m))
			if got := lru.Result(m); got != b {
				t.Errorf("%s LRU m=%d:\n curve %+v\n cell  %+v", prog.Name, m, got, b)
			}
		}
		ws := mustWS(t, c.Trace)
		for _, tau := range []int{1, 10, 100, 1000, c.Trace.Refs} {
			got, err := ws.Run(tau)
			if err != nil {
				t.Fatal(err)
			}
			if b := vmsim.Run(c.Trace.RefsOnly(), policy.NewWS(tau)); got != b {
				t.Errorf("%s WS tau=%d:\n curve %+v\n cell  %+v", prog.Name, tau, got, b)
			}
		}
	}
}
