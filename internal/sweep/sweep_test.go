package sweep_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"cdmm/internal/mem"
	"cdmm/internal/policy"
	"cdmm/internal/sweep"
	"cdmm/internal/trace"
	"cdmm/internal/vmsim"
)

// randomTrace builds a deterministic pseudo-random trace with locality
// phases (bursts around a moving base), a realistic shape for sweeps.
func randomTrace(seed uint64, n, universe int) *trace.Trace {
	rng := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	tr := trace.New("rand")
	base := 0
	for i := 0; i < n; i++ {
		if rng()%97 == 0 {
			base = int(rng()) % universe
		}
		span := 4 + int(rng()%8)
		tr.AddRef(mem.Page((base + int(rng())%span) % universe))
	}
	return tr
}

func mustLRU(t *testing.T, src trace.Source) *sweep.LRUCurve {
	t.Helper()
	s, err := sweep.NewLRU(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustWS(t *testing.T, src trace.Source) *sweep.WS {
	t.Helper()
	s, err := sweep.NewWS(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLRUCurveMatchesBrute(t *testing.T) {
	tr := randomTrace(42, 3000, 40)
	s := mustLRU(t, tr)
	brute := vmsim.SweepLRU(tr, s.V)
	for m := 1; m <= s.V; m++ {
		b := brute[m-1]
		if got := s.Faults(m); got != b.Faults {
			t.Errorf("m=%d: faults %d != brute %d", m, got, b.Faults)
		}
		if got := s.MEM(m); math.Abs(got-b.MEM()) > 1e-6 {
			t.Errorf("m=%d: MEM %v != brute %v", m, got, b.MEM())
		}
		if got := s.ST(m); math.Abs(got-b.ST()) > 1e-3 {
			t.Errorf("m=%d: ST %v != brute %v", m, got, b.ST())
		}
		r := s.Result(m)
		if r.Faults != b.Faults || r.VirtualTime != b.VirtualTime || r.MemSum != b.MemSum || r.SpaceTime != b.SpaceTime || r.Policy != b.Policy {
			t.Errorf("m=%d: Result %+v != brute %+v", m, r, b)
		}
	}
}

func TestLRUCurvePropertyRandom(t *testing.T) {
	f := func(seed uint16) bool {
		tr := randomTrace(uint64(seed)+1, 600, 24)
		s, err := sweep.NewLRU(tr)
		if err != nil {
			return false
		}
		for _, m := range []int{1, 2, 3, 5, 8, s.V} {
			b := vmsim.Run(tr.StripDirectives(), policy.NewLRU(m))
			if s.Faults(m) != b.Faults {
				return false
			}
			if math.Abs(s.ST(m)-b.ST()) > 1e-3 {
				return false
			}
			if math.Abs(s.MEM(m)-b.MEM()) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestLRUCurveCompression forces many Fenwick compressions (small
// universe, long trace: the position counter laps the tree capacity
// hundreds of times) and checks the compressed analysis stays exact.
func TestLRUCurveCompression(t *testing.T) {
	tr := randomTrace(3, 60000, 12)
	s := mustLRU(t, tr)
	brute := vmsim.SweepLRU(tr, s.V)
	for m := 1; m <= s.V; m++ {
		if got := s.Faults(m); got != brute[m-1].Faults {
			t.Fatalf("m=%d: faults %d != brute %d", m, got, brute[m-1].Faults)
		}
	}
}

// TestLRUCurveStreamed runs the stack analysis directly over a chunked
// CDT3 file and requires bit-identical results to the in-memory pass.
func TestLRUCurveStreamed(t *testing.T) {
	tr := randomTrace(7, 20000, 30)
	path := filepath.Join(t.TempDir(), "t.cdt3")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.WriteCDT3(f, tr, 512); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := trace.OpenSource(path)
	if err != nil {
		t.Fatal(err)
	}
	memCurve := mustLRU(t, tr)
	fileCurve := mustLRU(t, src)
	if memCurve.V != fileCurve.V || memCurve.Refs != fileCurve.Refs {
		t.Fatalf("V/Refs mismatch: mem %d/%d file %d/%d", memCurve.V, memCurve.Refs, fileCurve.V, fileCurve.Refs)
	}
	for m := 1; m <= memCurve.V; m++ {
		if memCurve.Faults(m) != fileCurve.Faults(m) {
			t.Fatalf("m=%d: mem %d != streamed %d", m, memCurve.Faults(m), fileCurve.Faults(m))
		}
	}

	ws := mustWS(t, src)
	wsMem := mustWS(t, tr)
	for _, tau := range []int{1, 5, 50, 400} {
		a, err := ws.Run(tau)
		if err != nil {
			t.Fatal(err)
		}
		b, err := wsMem.Run(tau)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("tau=%d: streamed %+v != mem %+v", tau, a, b)
		}
	}
}

func TestLRUCurveMinST(t *testing.T) {
	tr := randomTrace(7, 4000, 30)
	s := mustLRU(t, tr)
	m, st := s.MinST()
	for mm := 1; mm <= s.V; mm++ {
		if s.ST(mm) < st {
			t.Fatalf("MinST returned m=%d (%v) but m=%d has %v", m, st, mm, s.ST(mm))
		}
	}
}

func TestLRUCurveMinAllocationForFaults(t *testing.T) {
	tr := randomTrace(11, 3000, 25)
	s := mustLRU(t, tr)
	target := s.Faults(s.V / 2)
	m, ok := s.MinAllocationForFaults(target)
	if !ok {
		t.Fatal("target not achievable but it must be (it equals a sweep point)")
	}
	if s.Faults(m) > target {
		t.Errorf("m=%d faults %d exceed target %d", m, s.Faults(m), target)
	}
	if m > 1 && s.Faults(m-1) <= target {
		t.Errorf("m=%d is not minimal: m-1 also achieves the target", m)
	}
}

func TestFromLRUCells(t *testing.T) {
	tr := randomTrace(19, 2000, 20)
	curve := mustLRU(t, tr)
	cells := sweep.FromLRUCells(vmsim.SweepLRU(tr, curve.V))
	if cells.V != curve.V || cells.Refs != curve.Refs {
		t.Fatalf("cell rebuild V/Refs mismatch: %d/%d vs %d/%d", cells.V, cells.Refs, curve.V, curve.Refs)
	}
	for m := 1; m <= curve.V; m++ {
		if cells.Faults(m) != curve.Faults(m) || cells.ST(m) != curve.ST(m) {
			t.Fatalf("m=%d: cell-built curve diverges", m)
		}
	}
	cm, cst := cells.MinST()
	m, st := curve.MinST()
	if cm != m || cst != st {
		t.Fatalf("MinST: cells (%d, %v) != curve (%d, %v)", cm, cst, m, st)
	}
}
