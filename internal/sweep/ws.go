package sweep

import (
	"sort"
	"sync"

	"cdmm/internal/mem"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
	"cdmm/internal/vmsim"
)

// WS answers working-set questions for every window size τ from one
// traversal of the reference stream, without replaying it per τ.
//
// Two single-pass histograms give the closed forms:
//
//   - Faults(τ): a reference faults iff the backward inter-reference
//     interval of its page exceeds τ (first references always fault), so
//     PF(τ) is a suffix count of the interval histogram.
//   - MemSum(τ): a reference at time u with forward re-reference distance
//     d (to the next reference of the same page, or to the end of the
//     stream) keeps its page in W(t,τ) for exactly min(τ, d) time steps,
//     so Σ_t |W(t,τ)| = Σ_u min(τ, d_u), a prefix sum over the forward
//     distance histogram.
//
// The space-time integral couples the working-set size to fault instants
// and does not reduce to a histogram; Curve computes it exactly for a
// whole τ grid in one event-driven traversal (see Curve), which is what
// MinST and Run use. All paths are cross-validated against brute
// per-cell replay in the tests.
type WS struct {
	Refs int
	src  trace.Source

	// interval suffix counts: faultsGE[k] = #refs with interval >= k.
	faultsGE []int
	// forward-distance histogram prefix aggregates: over distances
	// d in [1, k], cntPrefix counts refs and wPrefix sums d.
	cntPrefix []int64
	wPrefix   []int64

	// mu guards the memoized curve points; the engine shares one WS per
	// program across concurrent table rows.
	mu     sync.Mutex
	cache  map[int]vmsim.Result
	ladder []vmsim.Result // Curve(DefaultTaus), built on first MinST
}

// NewWS analyzes a reference stream's histograms in one traversal. The
// source is retained: Curve/Run/MinST traverse it again (once per grid,
// not once per τ).
func NewWS(src trace.Source) (*WS, error) {
	meta := src.Meta()
	n := meta.Refs
	s := &WS{Refs: n, src: src, cache: map[int]vmsim.Result{}}

	last := make([]int, int(meta.MaxPage)+2)
	fwdCnt := make([]int64, n+2) // distance -> count, d in [1, n+1]
	s.faultsGE = make([]int, n+3)
	t := 0
	err := walkRefs(src, func(pages []mem.Page) {
		for _, pg := range pages {
			t++
			if prev := last[pg]; prev != 0 {
				s.faultsGE[t-prev]++ // backward interval; always <= n
				fwdCnt[t-prev]++     // forward distance of the ref at prev
			} else {
				s.faultsGE[n+1]++ // first ref
			}
			last[pg] = t
		}
	})
	if err != nil {
		return nil, err
	}
	// Final references run to the end of the stream.
	for _, pos := range last {
		if pos != 0 {
			fwdCnt[n-pos+1]++
		}
	}

	for k := n + 1; k >= 1; k-- {
		s.faultsGE[k] += s.faultsGE[k+1]
	}
	s.cntPrefix = make([]int64, n+2)
	s.wPrefix = make([]int64, n+2)
	for d := 1; d <= n+1; d++ {
		s.cntPrefix[d] = s.cntPrefix[d-1] + fwdCnt[d]
		s.wPrefix[d] = s.wPrefix[d-1] + int64(d)*fwdCnt[d]
	}
	return s, nil
}

// Faults returns PF under window size tau.
func (s *WS) Faults(tau int) int {
	if tau < 1 {
		tau = 1
	}
	k := tau + 1
	if k > s.Refs+1 {
		k = s.Refs + 1
	}
	return s.faultsGE[k]
}

// MemSum returns Σ_t |W(t,τ)|.
func (s *WS) MemSum(tau int) float64 {
	if tau < 1 {
		tau = 1
	}
	if tau > s.Refs+1 {
		tau = s.Refs + 1
	}
	// Σ min(τ, d) = Σ_{d<=τ} d + τ·#{d>τ}. Every partial sum is an
	// integer below 2^53, so the float64 conversion is exact and matches
	// per-cell accumulation bit for bit.
	i := int64(tau)
	return float64(s.wPrefix[tau]) + float64(i)*float64(s.cntPrefix[s.Refs+1]-s.cntPrefix[tau])
}

// MEM returns the average working-set size under window size tau.
func (s *WS) MEM(tau int) float64 {
	if s.Refs == 0 {
		return 0
	}
	return s.MemSum(tau) / float64(s.Refs)
}

// TauForMEM returns the window size whose average working-set size is
// closest to target (MEM is non-decreasing in τ, so binary search).
func (s *WS) TauForMEM(target float64) int {
	lo, hi := 1, s.Refs
	if hi < 1 {
		return 1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if s.MEM(mid) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first τ with MEM >= target; τ-1 may be closer.
	if lo > 1 && target-s.MEM(lo-1) < s.MEM(lo)-target {
		return lo - 1
	}
	return lo
}

// MinTauForFaults returns the smallest window size whose fault count is at
// most target (faults are non-increasing in τ). The second result is false
// if no window achieves the target.
func (s *WS) MinTauForFaults(target int) (int, bool) {
	if s.Faults(s.Refs) > target {
		return s.Refs, false
	}
	lo, hi := 1, s.Refs
	for lo < hi {
		mid := (lo + hi) / 2
		if s.Faults(mid) <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// Run returns the exact replay result at one window size, computed by the
// curve engine (one stream traversal; memoized per τ).
func (s *WS) Run(tau int) (vmsim.Result, error) {
	if tau < 1 {
		tau = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.cache[tau]; ok {
		return r, nil
	}
	rs, err := s.curveLocked([]int{tau})
	if err != nil {
		return vmsim.Result{}, err
	}
	return rs[0], nil
}

// MinST scans the standard τ ladder for the window minimizing the
// space-time cost, computing the whole ladder's exact results in one
// traversal. It returns the best τ and its full result; ties break toward
// the smaller τ (strict-less scan in ladder order), matching the per-cell
// ladder scan.
func (s *WS) MinST() (int, vmsim.Result, error) {
	taus := vmsim.DefaultTaus(s.Refs)
	curve, err := s.Ladder()
	if err != nil {
		return 0, vmsim.Result{}, err
	}
	bestTau, best := taus[0], curve[0]
	for i, tau := range taus[1:] {
		if r := curve[i+1]; r.SpaceTime < best.SpaceTime {
			bestTau, best = tau, r
		}
	}
	return bestTau, best, nil
}

// Ladder returns the exact curve over vmsim.DefaultTaus(Refs), computed
// once and memoized.
func (s *WS) Ladder() ([]vmsim.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ladder == nil {
		curve, err := s.curveLocked(vmsim.DefaultTaus(s.Refs))
		if err != nil {
			return nil, err
		}
		s.ladder = curve
	}
	return s.ladder, nil
}

// Curve computes the exact replay result for every window size in taus —
// PF, MEM, the fault-coupled space-time integral, peak working set — in
// ONE traversal of the stream.
//
// The engine is event-driven. Grid windows are kept sorted; per window i
// it holds the live working-set size ws[i] and the last materialized
// step lastT[i], accumulating the (overwhelmingly common) no-change
// steps lazily as ws[i]×Δt. Per step t with backward interval b, windows
// with τ < b fault (a prefix of the sorted grid, found by binary
// search). Expiries are lazy chains through a calendar ring: the
// reference at time u schedules one event at u+τ₀; when it fires, the
// chain dies if the page was re-referenced meanwhile, otherwise window 0
// expires the page and the chain advances to u+τ₁, and so on up the
// grid. Total work is O(R·log|grid| + Σ_i PF(τ_i) + Σ_i X(τ_i)) — the
// activity the curves themselves measure — instead of O(R×|grid|).
func (s *WS) Curve(taus []int) ([]vmsim.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.curveLocked(taus)
}

func (s *WS) curveLocked(taus []int) ([]vmsim.Result, error) {
	if len(taus) == 0 {
		return nil, nil
	}
	// Sorted unique grid of the points not already cached; results fan
	// back out to the caller's order at the end.
	uniq := make([]int, 0, len(taus))
	for _, tau := range taus {
		if tau < 1 {
			tau = 1
		}
		if _, ok := s.cache[tau]; !ok {
			uniq = append(uniq, tau)
		}
	}
	sort.Ints(uniq)
	g := 0
	for i, tau := range uniq {
		if i == 0 || tau != uniq[g-1] {
			uniq[g] = tau
			g++
		}
	}
	uniq = uniq[:g]
	if g > 0 {
		if err := s.runGrid(uniq); err != nil {
			for _, tau := range uniq {
				delete(s.cache, tau)
			}
			return nil, err
		}
	}
	out := make([]vmsim.Result, len(taus))
	for i, tau := range taus {
		if tau < 1 {
			tau = 1
		}
		out[i] = s.cache[tau]
	}
	return out, nil
}

// runGrid executes the event-driven lockstep pass over the sorted unique
// grid, filling s.cache.
func (s *WS) runGrid(uniq []int) error {
	n := s.Refs
	g := len(uniq)
	meta := s.src.Meta()

	// Per-window state.
	ws := make([]int, g)     // live working-set size
	pf := make([]int, g)     // faults
	maxws := make([]int, g)  // peak working-set size
	memS := make([]int64, g) // Σ resident after each step
	stS := make([]int64, g)  // Σ resident × dt
	lastT := make([]int, g)  // next unmaterialized step
	exitAt := make([]int, g) // step stamp: window expired a page this step
	for i := range lastT {
		lastT[i] = 1
		exitAt[i] = -1
	}

	// Calendar ring of expiry chains. A chain lives at node u % W (at
	// most one per reference in the trailing τ_max window), linked into
	// the bucket of its next fire time.
	w := uniq[g-1] + 1
	if w > n+1 {
		w = n + 1 // fire times never exceed n
	}
	if w < 1 {
		w = 1
	}
	heads := make([]int32, w) // fire-slot -> node+1; 0 = empty
	nxt := make([]int32, w)   // node -> next node+1 in bucket
	nodeU := make([]int, w)   // node -> chain creation time
	nodePage := make([]int32, w)
	nodeIdx := make([]int32, w) // node -> grid index of pending expiry

	last := make([]int, int(meta.MaxPage)+2)
	exits := make([]int32, 0, g)
	tau0 := uniq[0]
	fs := int64(1 + policy.FaultService)

	t := 0
	err := walkRefs(s.src, func(pages []mem.Page) {
		for _, pg := range pages {
			t++
			prev := last[pg]
			last[pg] = t

			// Drain this step's expiry chains. The current reference is
			// already stamped, so a chain whose page is being re-touched
			// right now (backward interval exactly τ) correctly dies:
			// insertion precedes expiry in the per-cell replay.
			exits = exits[:0]
			slot := int32(t % w)
			for nd := heads[slot]; nd != 0; {
				node := nd - 1
				nd = nxt[node]
				u := nodeU[node]
				if last[nodePage[node]] != u {
					continue // page re-referenced in (u, t]: chain dies
				}
				i := nodeIdx[node]
				exits = append(exits, i)
				if int(i+1) < g {
					if fire := u + uniq[i+1]; fire <= n {
						nodeIdx[node] = i + 1
						s2 := int32(fire % w)
						nxt[node] = heads[s2]
						heads[s2] = node + 1
					}
				}
			}
			heads[slot] = 0

			// Windows with τ < b fault: a prefix of the sorted grid.
			faultIdx := 0
			if prev == 0 {
				faultIdx = g
			} else if b := t - prev; b > tau0 {
				if b > uniq[g-1] {
					faultIdx = g
				} else {
					faultIdx = sort.SearchInts(uniq, b)
				}
			}

			// Expiries alone (no fault): resident shrinks by one.
			for _, e := range exits {
				i := int(e)
				if i < faultIdx {
					exitAt[i] = t // merge with the fault below
					continue
				}
				if gap := t - lastT[i]; gap > 0 {
					r := int64(ws[i])
					memS[i] += r * int64(gap)
					stS[i] += r * int64(gap)
				}
				ws[i]--
				r := int64(ws[i])
				memS[i] += r
				stS[i] += r
				lastT[i] = t + 1
			}
			// Faults: resident grows by one (unless an expiry landed on
			// the same step), and the step costs 1+FaultService.
			for i := 0; i < faultIdx; i++ {
				if gap := t - lastT[i]; gap > 0 {
					r := int64(ws[i])
					memS[i] += r * int64(gap)
					stS[i] += r * int64(gap)
				}
				if exitAt[i] != t {
					ws[i]++
					if ws[i] > maxws[i] {
						maxws[i] = ws[i]
					}
				}
				pf[i]++
				r := int64(ws[i])
				memS[i] += r
				stS[i] += r * fs
				lastT[i] = t + 1
			}

			// Schedule this reference's expiry chain.
			if fire := t + tau0; fire <= n {
				node := int32(t % w)
				nodeU[node] = t
				nodePage[node] = int32(pg)
				nodeIdx[node] = 0
				s2 := int32(fire % w)
				nxt[node] = heads[s2]
				heads[s2] = node + 1
			}
		}
	})
	if err != nil {
		return err
	}
	// Materialize the tail: constant working set to the end of the run.
	for i := range ws {
		if gap := n + 1 - lastT[i]; gap > 0 {
			r := int64(ws[i])
			memS[i] += r * int64(gap)
			stS[i] += r * int64(gap)
		}
		vt := int64(n) + int64(pf[i])*policy.FaultService
		s.cache[uniq[i]] = vmsim.Result{
			Policy:      policy.NewWS(uniq[i]).Name(),
			Refs:        n,
			Faults:      pf[i],
			MemSum:      float64(memS[i]),
			SpaceTime:   float64(stS[i]),
			VirtualTime: vt,
			MaxResident: maxws[i],
		}
	}
	return nil
}
