package sweep

import (
	"sort"

	"cdmm/internal/mem"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
	"cdmm/internal/vmsim"
)

// LRUCurve holds the full LRU allocation sweep m = 1..V, computed from a
// single pass over the reference stream with Mattson's stack algorithm:
// the LRU stack distance of each reference is the number of distinct
// pages touched since the page's previous reference, counted by a
// Fenwick tree over reference positions. The results are exactly what
// replaying the stream under policy.NewLRU(m) for every m would produce
// — page faults, MEM and space-time cost under the fixed-partition
// charging rule — at a fraction of the cost.
//
// The tree is periodically compressed: whenever the position counter
// reaches the tree's capacity, the V live positions (one per distinct
// page) are renumbered 1..V and the tree rebuilt, so memory stays O(V)
// for arbitrarily long streams (a multi-GB CDT3 file sweeps in the same
// footprint as its page universe).
type LRUCurve struct {
	V    int
	Refs int
	// faults[m] is PF under allocation m, for m in [1, V]; faults[0] is
	// unused. Allocations above V behave exactly like V.
	faults []int
}

// NewLRU analyzes a reference stream in one traversal.
func NewLRU(src trace.Source) (*LRUCurve, error) {
	meta := src.Meta()
	s := &LRUCurve{Refs: meta.Refs}

	// Pages are addressed directly (Meta bounds the universe), so the
	// per-page last-position bookkeeping is array indexing.
	lastPos := make([]int, int(meta.MaxPage)+2)
	distHist := make([]int, meta.Distinct+2)

	// Fenwick capacity: room for ~4 live positions per distinct page
	// between compressions, so compression cost amortizes to O(log V)
	// per reference.
	n := 1024
	for n < 4*(meta.Distinct+2) {
		n *= 2
	}
	bit := newFenwick(n)
	cur := 1
	v := 0

	compact := func() {
		// Renumber the live positions 1..v in order and rebuild.
		live := make([]posPage, 0, v)
		for pg, pos := range lastPos {
			if pos != 0 {
				live = append(live, posPage{pos: pos, page: pg})
			}
		}
		sort.Slice(live, func(i, j int) bool { return live[i].pos < live[j].pos })
		for n < 4*(len(live)+2) {
			n *= 2
			bit = newFenwick(n)
		}
		for i := range bit.tree {
			bit.tree[i] = 0
		}
		for k, lp := range live {
			lastPos[lp.page] = k + 1
			bit.add(k+1, 1)
		}
		cur = len(live) + 1
	}

	err := walkRefs(src, func(pages []mem.Page) {
		for _, pg := range pages {
			p := int(pg)
			if prev := lastPos[p]; prev != 0 {
				// Distinct pages referenced strictly after prev: set
				// bits in (prev, cur).
				d := bit.sum(cur-1) - bit.sum(prev) + 1
				if d >= len(distHist) {
					d = len(distHist) - 1 // cannot exceed V, defensive
				}
				distHist[d]++
				bit.add(prev, -1)
			} else {
				v++
			}
			bit.add(cur, 1)
			lastPos[p] = cur
			cur++
			if cur > n {
				compact()
			}
		}
	})
	if err != nil {
		return nil, err
	}

	// Faults(m) = first touches (V) + #refs with stack distance > m.
	s.V = v
	for len(distHist) < v+2 {
		// A source that under-reported Distinct in Meta; the clamped
		// histogram tail stays exact because distances never exceed the
		// true V.
		distHist = append(distHist, 0)
	}
	s.faults = make([]int, v+1)
	for d := len(distHist) - 2; d >= 1; d-- {
		distHist[d] += distHist[d+1]
	}
	for m := 1; m <= v; m++ {
		s.faults[m] = v + distHist[m+1]
	}
	return s, nil
}

// FromLRUCells rebuilds the curve from per-cell simulation results
// (results[m-1] is the replay at allocation m) — the cell-mode
// constructor, used when the engine is asked to distrust the one-pass
// stack analysis and replay every allocation instead.
func FromLRUCells(results []vmsim.Result) *LRUCurve {
	s := &LRUCurve{V: len(results), faults: make([]int, len(results)+1)}
	if len(results) > 0 {
		s.Refs = results[0].Refs
	}
	for m := 1; m <= len(results); m++ {
		s.faults[m] = results[m-1].Faults
	}
	return s
}

type posPage struct{ pos, page int }

func (s *LRUCurve) clamp(m int) int {
	if m < 1 {
		return 1
	}
	if m > s.V {
		return s.V
	}
	return m
}

// Faults returns PF under allocation m.
func (s *LRUCurve) Faults(m int) int { return s.faults[s.clamp(m)] }

// MEM returns the memory allocated: the partition size itself.
func (s *LRUCurve) MEM(m int) float64 { return float64(s.clamp(m)) }

// ST returns the space-time cost under allocation m: the partition is
// held for the whole virtual time R + FaultService·PF(m).
func (s *LRUCurve) ST(m int) float64 {
	m = s.clamp(m)
	return float64(m) * (float64(s.Refs) + float64(policy.FaultService)*float64(s.faults[m]))
}

// Result converts one sweep point into the common Result form.
func (s *LRUCurve) Result(m int) vmsim.Result {
	m = s.clamp(m)
	pf := s.faults[m]
	vt := int64(s.Refs) + int64(pf)*policy.FaultService
	return vmsim.Result{
		Policy:      policy.NewLRU(m).Name(),
		Refs:        s.Refs,
		Faults:      pf,
		MemSum:      float64(m) * float64(s.Refs),
		SpaceTime:   float64(m) * float64(vt),
		VirtualTime: vt,
		MaxResident: m,
	}
}

// MinST returns the allocation minimizing space-time cost and that cost.
func (s *LRUCurve) MinST() (int, float64) {
	bestM, best := 1, s.ST(1)
	for m := 2; m <= s.V; m++ {
		if st := s.ST(m); st < best {
			bestM, best = m, st
		}
	}
	return bestM, best
}

// MinAllocationForFaults returns the smallest allocation whose fault count
// is at most target (faults are non-increasing in m for LRU). The second
// result is false if even m = V faults more than target.
func (s *LRUCurve) MinAllocationForFaults(target int) (int, bool) {
	if s.faults[s.V] > target {
		return s.V, false
	}
	lo, hi := 1, s.V
	for lo < hi {
		mid := (lo + hi) / 2
		if s.faults[mid] <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// fenwick is a basic binary indexed tree over 1..n.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// sum returns the prefix sum over [1, i].
func (f *fenwick) sum(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}
