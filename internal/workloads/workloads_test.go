package workloads

import (
	"strings"
	"testing"

	"cdmm/internal/policy"
	"cdmm/internal/trace"
	"cdmm/internal/vmsim"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"APPROX", "CONDUCT", "FDJAC", "FIELD", "HWSCRT", "HYBRJ", "INIT", "MAIN", "TQL"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("programs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("program %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("NOPE"); err == nil {
		t.Error("expected error for unknown program")
	}
}

func TestAllProgramsCompile(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			c, err := Compile(p)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if c.Trace.Refs < 10_000 {
				t.Errorf("trace too short: R = %d", c.Trace.Refs)
			}
			if c.Trace.Refs > 5_000_000 {
				t.Errorf("trace too long: R = %d", c.Trace.Refs)
			}
			if c.V() < 20 {
				t.Errorf("virtual size too small: V = %d pages", c.V())
			}
			if c.Trace.Distinct > c.V() {
				t.Errorf("distinct pages %d exceed virtual size %d", c.Trace.Distinct, c.V())
			}
			// Directives must be present in every trace.
			var allocs int
			for _, e := range c.Trace.Events {
				if e.Kind == trace.EvAlloc {
					allocs++
				}
			}
			if allocs == 0 {
				t.Error("no ALLOCATE events in trace")
			}
		})
	}
}

func TestPaperVirtualSizes(t *testing.T) {
	// The paper states CONDUCT has 270 pages and HWSCRT 69 pages in their
	// virtual spaces; the reconstructions are sized to match closely.
	cases := map[string]struct{ lo, hi int }{
		"CONDUCT": {260, 275},
		"HWSCRT":  {69, 69},
	}
	for name, want := range cases {
		p, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		if v := c.V(); v < want.lo || v > want.hi {
			t.Errorf("%s: V = %d pages, want within [%d, %d]", name, v, want.lo, want.hi)
		}
	}
}

func TestCompileCached(t *testing.T) {
	p, _ := Get("MAIN")
	c1 := MustCompile(p)
	c2 := MustCompile(p)
	if c1 != c2 {
		t.Error("Compile should cache and return the same instance")
	}
}

func TestSetsResolve(t *testing.T) {
	for _, p := range All() {
		if len(p.Sets) == 0 {
			t.Errorf("%s has no directive sets", p.Name)
			continue
		}
		if p.DefaultSet().Name != p.Sets[0].Name {
			t.Errorf("%s: default set mismatch", p.Name)
		}
		for _, s := range p.Sets {
			got, ok := p.Set(s.Name)
			if !ok || got.Name != s.Name {
				t.Errorf("%s: set %q not resolvable", p.Name, s.Name)
			}
			if s.Level < 1 {
				t.Errorf("%s/%s: level %d < 1", p.Name, s.Name, s.Level)
			}
			if s.Selector() == nil {
				t.Errorf("%s/%s: nil selector", p.Name, s.Name)
			}
		}
		if _, ok := p.Set("NO-SUCH-SET"); ok {
			t.Errorf("%s: bogus set resolved", p.Name)
		}
	}
}

// TestOverrideKeysExist ensures every override key in every set names a
// loop that actually exists in the program (guards against typos when the
// sources evolve).
func TestOverrideKeysExist(t *testing.T) {
	for _, p := range All() {
		c := MustCompile(p)
		keys := map[string]bool{}
		for _, l := range c.Info.Loops {
			keys[l.Key()] = true
		}
		for _, s := range p.Sets {
			for k := range s.Overrides {
				if !keys[k] {
					t.Errorf("%s/%s: override key %q names no loop", p.Name, s.Name, k)
				}
			}
		}
	}
}

// TestDirectiveSetOrdering verifies the Table 1 property on MAIN: higher
// strata allocate more memory and fault less.
func TestDirectiveSetOrdering(t *testing.T) {
	p, _ := Get("MAIN")
	c := MustCompile(p)
	type point struct {
		mem float64
		pf  int
	}
	run := func(level int) point {
		cd := policy.NewCD(policy.SelectLevel(level), 2)
		r := vmsim.Run(c.Trace, cd)
		return point{r.MEM(), r.Faults}
	}
	p1, p2, p4, p5 := run(1), run(2), run(4), run(5)
	if !(p1.mem <= p2.mem && p2.mem <= p4.mem && p4.mem <= p5.mem) {
		t.Errorf("MEM not monotone in level: %v %v %v %v", p1.mem, p2.mem, p4.mem, p5.mem)
	}
	if !(p1.pf >= p2.pf && p2.pf >= p4.pf && p4.pf >= p5.pf) {
		t.Errorf("PF not anti-monotone in level: %v %v %v %v", p1.pf, p2.pf, p4.pf, p5.pf)
	}
}

// TestTracesDeterministic recompiles one program from scratch (bypassing
// the cache) and compares traces event by event.
func TestTracesDeterministic(t *testing.T) {
	p, _ := Get("HWSCRT")
	c := MustCompile(p)
	clone := &Program{Name: "HWSCRT-CLONE", Source: p.Source, Sets: p.Sets}
	c2, err := Compile(clone)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Trace.Events) != len(c2.Trace.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(c.Trace.Events), len(c2.Trace.Events))
	}
	for i := range c.Trace.Events {
		if c.Trace.Events[i] != c2.Trace.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestDescriptionsPresent(t *testing.T) {
	for _, p := range All() {
		if strings.TrimSpace(p.Description) == "" {
			t.Errorf("%s: empty description", p.Name)
		}
	}
}
