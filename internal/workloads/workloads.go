// Package workloads provides the nine numerical FORTRAN programs of the
// paper's §5 evaluation — MAIN, FDJAC, TQL, FIELD, INIT, APPROX, HYBRJ,
// CONDUCT and HWSCRT — reconstructed in the FORTRAN subset from the named
// algorithms' public descriptions (MINPACK, EISPACK, FISHPACK, and
// standard relaxation kernels), plus the directive-set variants used in
// Tables 1, 3 and 4 (MAIN1–3, FDJAC1, TQL1–2).
//
// The authors' exact sources are not available; these reconstructions
// preserve what the CD policy consumes — the loop-nest shapes, reference
// orders and array footprints — as documented in DESIGN.md.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"cdmm/internal/directive"
	"cdmm/internal/fortran"
	"cdmm/internal/interp"
	"cdmm/internal/locality"
	"cdmm/internal/mem"
	"cdmm/internal/policy"
	"cdmm/internal/sem"
	"cdmm/internal/trace"
)

// Program is one workload: a source text plus its directive-set variants.
type Program struct {
	Name        string
	Description string
	Source      string
	// Sets are the directive-set variants the paper runs (Table 1): each
	// names a run and gives the ALLOCATE stratum honored, where level 1 is
	// the innermost-loop directives (smallest allocations) and level Δ the
	// outermost. The first set is the program's canonical one (the name
	// used in Tables 2–4).
	Sets []Set
}

// Set is a named directive-set variant. Level is the default stratum;
// Overrides maps loop keys (FORTRAN statement labels, or "L<line>" for
// unlabeled loops) to a different stratum for the directives of those
// loops — the paper's hand-chosen sets need not be uniform.
type Set struct {
	Name      string
	Level     int
	Overrides map[string]int
}

// Selector builds the ArmSelector realizing this directive set.
func (s Set) Selector() policy.ArmSelector {
	if len(s.Overrides) == 0 {
		return policy.SelectLevel(s.Level)
	}
	return policy.SelectLevels(s.Level, s.Overrides)
}

// DefaultSet returns the canonical variant.
func (p *Program) DefaultSet() Set { return p.Sets[0] }

// Set returns the named variant.
func (p *Program) Set(name string) (Set, bool) {
	for _, s := range p.Sets {
		if s.Name == name {
			return s, true
		}
	}
	return Set{}, false
}

var (
	registryMu sync.Mutex
	registry   = map[string]*Program{}
)

// register adds a program at package init.
func register(p *Program) *Program {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[p.Name]; dup {
		panic("workloads: duplicate program " + p.Name)
	}
	registry[p.Name] = p
	return p
}

// All returns every registered program sorted by name.
func All() []*Program {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]*Program, 0, len(registry))
	for _, p := range registry {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the named program.
func Get(name string) (*Program, error) {
	registryMu.Lock()
	defer registryMu.Unlock()
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown program %q", name)
	}
	return p, nil
}

// Names returns the sorted program names.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, p := range all {
		names[i] = p.Name
	}
	return names
}

// Compiled bundles everything derived from one program's source: the AST,
// semantic info, address-space layout, locality analysis, directive plan,
// and the directive-carrying execution trace.
type Compiled struct {
	Program  *Program
	AST      *fortran.Program
	Info     *sem.Info
	Layout   *mem.Layout
	Analysis *locality.Analysis
	Plan     *directive.Plan
	Trace    *trace.Trace
}

// V returns the program's virtual size in pages.
func (c *Compiled) V() int { return c.Layout.TotalPages() }

// compileEntry is one singleflight compilation slot: done is closed when
// c and err are final.
type compileEntry struct {
	done chan struct{}
	c    *Compiled
	err  error
}

var (
	compileMu    sync.Mutex
	compileCache = map[string]*compileEntry{}
)

// Compile parses, analyzes and executes the program with the default
// geometry, producing its directive plan and trace. Results are cached
// with singleflight semantics — concurrent callers for the same program
// block on one compilation instead of duplicating the pipeline; traces
// are deterministic and immutable, so sharing is safe. A failed
// compilation is not cached (every caller retries).
func Compile(p *Program) (*Compiled, error) {
	compileMu.Lock()
	ent, ok := compileCache[p.Name]
	if !ok {
		ent = &compileEntry{done: make(chan struct{})}
		compileCache[p.Name] = ent
	}
	compileMu.Unlock()
	if ok {
		<-ent.done
		return ent.c, ent.err
	}
	ent.c, ent.err = compile(p)
	if ent.err != nil {
		compileMu.Lock()
		delete(compileCache, p.Name)
		compileMu.Unlock()
	}
	close(ent.done)
	return ent.c, ent.err
}

// compile is the uncached pipeline.
func compile(p *Program) (*Compiled, error) {
	ast, err := fortran.Parse(p.Source)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", p.Name, err)
	}
	info, err := sem.Analyze(ast)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", p.Name, err)
	}
	layout, err := mem.NewLayout(ast, mem.DefaultGeometry)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", p.Name, err)
	}
	analysis := locality.Analyze(info, layout, locality.DefaultParams)
	plan := directive.Build(analysis)
	// Sites: the compiled trace carries the provenance side-band so the
	// attribution plane (cdmm explain, /explain) can name fault sources;
	// the un-instrumented simulation path never reads it.
	tr, err := interp.Run(info, interp.Config{Layout: layout, Plan: plan, Sites: true})
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", p.Name, err)
	}
	return &Compiled{
		Program:  p,
		AST:      ast,
		Info:     info,
		Layout:   layout,
		Analysis: analysis,
		Plan:     plan,
		Trace:    tr,
	}, nil
}

// MustCompile is Compile but panics on error; for the embedded suite.
func MustCompile(p *Program) *Compiled {
	c, err := Compile(p)
	if err != nil {
		panic(err)
	}
	return c
}
