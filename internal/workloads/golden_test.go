package workloads

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cdmm/internal/locality"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files")

// TestGoldenDirectivePlans pins the exact directive plan and locality tree
// of every workload. Any change to the locality rules, the priority-index
// assignment, or the insertion algorithms shows up here as a readable
// diff. Regenerate intentionally with:
//
//	go test ./internal/workloads -run Golden -update
func TestGoldenDirectivePlans(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			c, err := Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			got := "== directives ==\n" + c.Plan.Render() +
				"== locality tree ==\n" + locality.RenderTree(c.Analysis.Tree())
			path := filepath.Join("testdata", p.Name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("directive plan changed; diff against %s:\n--- got ---\n%s", path, got)
			}
		})
	}
}
