package workloads

// MAIN: an atmospheric-model driver in the style of the UIARL codes the
// paper traces — a time loop over repeated grid-relaxation phases (a
// four-deep nest) plus vector smoothing phases, giving the four-level
// directive structure behind the MAIN/MAIN1/MAIN2/MAIN3 rows of Table 1.
var MAIN = register(&Program{
	Name: "MAIN",
	Description: "UIARL-style atmospheric driver: time loop over grid " +
		"relaxation (4-deep nest) and vector smoothing phases",
	Sets: []Set{
		{Name: "MAIN", Level: 2},  // per-column sweep locality (canonical)
		{Name: "MAIN1", Level: 5}, // outermost: whole-program locality
		{Name: "MAIN2", Level: 4}, // grid re-reference locality
		{Name: "MAIN3", Level: 1}, // innermost: active pages only
	},
	Source: `
PROGRAM MAIN
C Grids are 128 x 12 (24 pages each at 64 elements/page); ZB and FC are
C work vectors. Column-major storage; the relaxation walks columns, with
C an inner multi-sweep loop that re-references the current column set.
DIMENSION U(128,12), W(128,12), PSI(128,12), ZB(640), FC(320)
C ---- initial fields (column-wise) ----
DO 20 J = 1, 12
  DO 10 I = 1, 128
    U(I,J) = 0.01 * FLOAT(I) + 0.1 * FLOAT(J)
    W(I,J) = 0.02 * FLOAT(I) - 0.05 * FLOAT(J)
    PSI(I,J) = 0.0
10 CONTINUE
20 CONTINUE
DO 30 L = 1, 640
  ZB(L) = 1.0
30 CONTINUE
DO 40 L = 1, 320
  FC(L) = 0.5
40 CONTINUE
C ---- time integration ----
DO 100 IT = 1, 5
C   relaxation phase: K repetitions re-reference the whole grids
  DO 90 K = 1, 2
    DO 80 J = 1, 11
C     several smoothing sweeps re-walk the same columns
      DO 75 IS = 1, 4
        DO 70 I = 1, 127
          PSI(I,J) = 0.25 * (U(I,J) + U(I+1,J) + W(I,J) + W(I,J+1))
          U(I,J) = U(I,J) + 0.1 * PSI(I,J)
70      CONTINUE
75    CONTINUE
80  CONTINUE
90 CONTINUE
C   vector smoothing phases (leaf loops)
  DO 95 L = 1, 640
    ZB(L) = 0.99 * ZB(L)
95 CONTINUE
  DO 96 L = 1, 320
    FC(L) = FC(L) + 0.001
96 CONTINUE
100 CONTINUE
END
`,
})

// FDJAC: the MINPACK forward-difference Jacobian (fdjac2): for each
// variable j, perturb x(j), re-evaluate the residual vector, and store the
// divided difference into column j of the Jacobian.
var FDJAC = register(&Program{
	Name: "FDJAC",
	Description: "MINPACK forward-difference Jacobian: perturb each " +
		"variable, re-evaluate residuals, fill Jacobian columns",
	Sets: []Set{
		// The canonical set holds the Jacobian through the row-wise
		// step-prediction passes (level 3 covers the FP nest).
		{Name: "FDJAC", Level: 3},
		{Name: "FDJAC1", Level: 2},
	},
	Source: `
PROGRAM FDJAC
PARAMETER (N = 120)
DIMENSION X(N), FVEC(N), WA(N), DX(N), FP(N), FJAC(N,N)
C ---- starting point and base residuals ----
DO 10 I = 1, N
  X(I) = 0.1 + 0.5 * FLOAT(I) / FLOAT(N)
  DX(I) = 0.01
10 CONTINUE
DO 20 I = 1, N
  FVEC(I) = X(I) * X(I) - COS(X(I))
20 CONTINUE
C ---- forward differences, one Jacobian column per variable ----
DO 60 J = 1, N
  TEMP = X(J)
  H = 0.001 * ABS(TEMP)
  IF (H .EQ. 0.0) H = 0.001
  X(J) = TEMP + H
  DO 30 I = 1, N
    WA(I) = X(I) * X(I) - COS(X(I)) + 0.01 * X(J)
30 CONTINUE
  X(J) = TEMP
  DO 40 I = 1, N
    FJAC(I,J) = (WA(I) - FVEC(I)) / H
40 CONTINUE
60 CONTINUE
C ---- step prediction: the forward product J*dx is computed row-wise ----
DO 90 K = 1, 2
  DO 80 I = 1, N
    ACC = 0.0
    DO 70 J = 1, N
      ACC = ACC + FJAC(I,J) * DX(J)
70  CONTINUE
    FP(I) = FVEC(I) + ACC
80 CONTINUE
90 CONTINUE
END
`,
})

// TQL: the EISPACK tridiagonal QL eigensolver structure (TQL2): per
// eigenvalue, a convergence-tested QL iteration applying plane rotations
// that update adjacent columns of the eigenvector matrix Z.
var TQL = register(&Program{
	Name: "TQL",
	Description: "EISPACK TQL2-style tridiagonal QL eigensolver with " +
		"convergence loops and column rotations of the eigenvector matrix",
	Sets: []Set{
		{Name: "TQL1", Level: 2},
		{Name: "TQL2", Level: 1},
	},
	Source: `
PROGRAM TQL
PARAMETER (N = 64)
DIMENSION D(N), E(N), Z(N,N)
C ---- symmetric tridiagonal matrix and identity eigenvector basis ----
DO 10 I = 1, N
  D(I) = 2.0 + 0.01 * FLOAT(I)
  E(I) = -1.0
10 CONTINUE
E(1) = 0.0
DO 30 J = 1, N
  DO 20 I = 1, N
    Z(I,J) = 0.0
20 CONTINUE
  Z(J,J) = 1.0
30 CONTINUE
C ---- QL iteration per eigenvalue index L ----
DO 100 L = 1, N - 1
  DO 90 ITER = 1, 12
C     convergence scan for a negligible off-diagonal
    TEST = ABS(E(L+1))
    IF (TEST .LT. 0.0001) EXIT
C     implicit shift from the 2x2 corner
    G = (D(L+1) - D(L)) / (2.0 * E(L+1))
    R = SQRT(G * G + 1.0)
    SH = D(L) - E(L+1) / (G + SIGN(R, G))
C     one QL sweep: rotations over rows L..L+1 updating Z columns
    DO 80 K = L, MIN(L + 1, N - 1)
      C = 0.8
      S = 0.6
      DK = D(K)
      D(K) = C * C * DK + S * S * D(K+1) - 0.1 * SH
      D(K+1) = S * S * DK + C * C * D(K+1) - 0.1 * SH
      E(K+1) = 0.55 * E(K+1)
      DO 70 I = 1, N
        ZK = Z(I,K)
        Z(I,K) = C * ZK + S * Z(I,K+1)
        Z(I,K+1) = C * Z(I,K+1) - S * ZK
70    CONTINUE
80  CONTINUE
90 CONTINUE
100 CONTINUE
C ---- back transformation: normalize each eigenvector column ----
DO 140 K = 1, 3
  DO 130 J = 1, N
    ANORM = 0.0
    DO 110 I = 1, N
      ANORM = ANORM + Z(I,J) * Z(I,J)
110 CONTINUE
    ANORM = SQRT(ANORM) + 0.0001
    DO 120 I = 1, N
      Z(I,J) = Z(I,J) / ANORM
120 CONTINUE
130 CONTINUE
140 CONTINUE
C ---- residual refinement: row-wise passes over the eigenvector matrix ----
DO 180 K = 1, 3
  DO 170 I = 1, N
    ACC = 0.0
    DO 160 J = 1, N
      ACC = ACC + Z(I,J) * D(J)
160 CONTINUE
    E(I) = 0.5 * (E(I) + ACC)
170 CONTINUE
180 CONTINUE
END
`,
})

// FIELD: a field-update kernel — row-wise gradient extraction followed by
// column-wise relaxation and copy-back, per time step. The row-wise pass
// is the classic bad-stride case for fixed-allocation policies.
var FIELD = register(&Program{
	Name: "FIELD",
	Description: "field relaxation: row-wise gradient pass then " +
		"column-wise update and copy-back per time step",
	Sets: []Set{
		// Level 2 covers the row-wise gradient pass (Xr·N pages) and the
		// per-column stencil localities.
		{Name: "FIELD", Level: 2},
	},
	Source: `
PROGRAM FIELD
DIMENSION A(128,30), B(128,30), BV(128), RS(128)
DO 20 J = 1, 30
  DO 10 I = 1, 128
    A(I,J) = 0.1 * FLOAT(I + J)
    B(I,J) = 0.0
10 CONTINUE
20 CONTINUE
DO 25 I = 1, 128
  BV(I) = 1.0
  RS(I) = 0.0
25 CONTINUE
DO 100 IT = 1, 4
C   row-wise gradient accumulation (stride = column length)
  DO 40 I = 1, 128
    RS(I) = 0.0
    DO 30 J = 1, 29
      RS(I) = RS(I) + ABS(A(I,J+1) - A(I,J))
30  CONTINUE
40 CONTINUE
C   column-wise relaxation into B
  DO 60 J = 2, 29
    DO 50 I = 2, 127
      B(I,J) = 0.25 * (A(I-1,J) + A(I+1,J) + A(I,J-1) + A(I,J+1)) + 0.01 * RS(I) * BV(I)
50  CONTINUE
60 CONTINUE
C   copy-back (column-wise)
  DO 80 J = 2, 29
    DO 70 I = 2, 127
      A(I,J) = B(I,J)
70  CONTINUE
80 CONTINUE
100 CONTINUE
END
`,
})

// INIT: an initialization-dominated program: a row-wise first touch of two
// grids (the worst reference order in column-major storage), a column-wise
// second pass, and vector table setup, repeated per configuration.
var INIT = register(&Program{
	Name: "INIT",
	Description: "initialization kernel: row-wise first touch, " +
		"column-wise normalization, vector table setup",
	Sets: []Set{
		// The first-touch nest (loops 20/10) is honored at its own level so
		// the 100-page row-sweep working set is covered; everything else
		// streams at the innermost stratum.
		{Name: "INIT", Level: 1, Overrides: map[string]int{"10": 2, "20": 2}},
	},
	Source: `
PROGRAM INIT
DIMENSION A(64,50), B(64,50), C(3200)
C ---- one-time row-wise first touch of A and B: the whole 100-page
C ---- grid working set is live while rows are swept (64 rows per page)
DO 20 I = 1, 64
  DO 10 J = 1, 50
    A(I,J) = FLOAT(I) * 0.01 + FLOAT(J) * 0.02
    B(I,J) = A(I,J) * 0.5
10 CONTINUE
20 CONTINUE
C ---- long streaming phases: column passes and table smoothing ----
DO 100 IT = 1, 5
C   column-wise normalization streams A and B
  DO 40 J = 1, 50
    DO 30 I = 1, 64
      A(I,J) = A(I,J) / (1.0 + B(I,J))
30  CONTINUE
40 CONTINUE
C   work-table setup and smoothing sweeps
  DO 50 L = 1, 3200
    C(L) = FLOAT(L) * 0.001 + FLOAT(IT)
50 CONTINUE
  DO 70 K = 1, 3
    DO 60 L = 2, 3200
      C(L) = 0.5 * (C(L) + C(L-1))
60  CONTINUE
70 CONTINUE
100 CONTINUE
END
`,
})
