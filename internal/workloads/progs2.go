package workloads

// APPROX: least-squares function approximation — a Chebyshev-style basis
// matrix built column by column via recurrence, normal-equation assembly,
// and a row-wise residual evaluation pass (the contrasting bad stride).
var APPROX = register(&Program{
	Name: "APPROX",
	Description: "least-squares approximation: basis recurrence " +
		"(column-wise), normal equations, row-wise residual passes",
	Sets: []Set{
		// The normal-equation assembly (loops 70/60/50) and the residual
		// refinement nest (130/120/110/125) hold the basis matrix; the
		// basis build and coefficient phases stream.
		{Name: "APPROX", Level: 1, Overrides: map[string]int{
			"50": 3, "60": 3, "70": 3, "110": 3, "120": 3, "125": 3,
		}},
	},
	Source: `
PROGRAM APPROX
PARAMETER (M = 256, NB = 16)
DIMENSION PHI(M,NB), G(NB,NB), CF(NB), XS(M), YS(M), R2(M)
C ---- sample points and target values ----
DO 10 I = 1, M
  XS(I) = -1.0 + 2.0 * FLOAT(I - 1) / FLOAT(M - 1)
  YS(I) = COS(3.0 * XS(I)) + 0.2 * XS(I)
10 CONTINUE
C ---- Chebyshev basis, one column per basis function ----
DO 20 I = 1, M
  PHI(I,1) = 1.0
  PHI(I,2) = XS(I)
20 CONTINUE
DO 40 K = 3, NB
  DO 30 I = 1, M
    PHI(I,K) = 2.0 * XS(I) * PHI(I,K-1) - PHI(I,K-2)
30 CONTINUE
40 CONTINUE
C ---- normal equations G = PHI' * PHI ----
DO 70 K = 1, NB
  DO 60 L = 1, NB
    ACC = 0.0
    DO 50 I = 1, M
      ACC = ACC + PHI(I,K) * PHI(I,L)
50  CONTINUE
    G(K,L) = ACC
60 CONTINUE
70 CONTINUE
C ---- diagonal-dominant coefficient estimate ----
DO 90 K = 1, NB
  ACC = 0.0
  DO 80 I = 1, M
    ACC = ACC + PHI(I,K) * YS(I)
80 CONTINUE
  CF(K) = ACC / (G(K,K) + 1.0)
90 CONTINUE
C ---- row-wise residual refinement passes ----
DO 130 IT = 1, 3
  DO 120 I = 1, M
    ACC = 0.0
    DO 110 K = 1, NB
      ACC = ACC + CF(K) * PHI(I,K)
110 CONTINUE
    R2(I) = YS(I) - ACC
120 CONTINUE
  DO 125 K = 1, NB
    CF(K) = CF(K) + 0.001 * R2(K)
125 CONTINUE
130 CONTINUE
END
`,
})

// HYBRJ: the MINPACK Powell hybrid method's memory shape — per outer
// iteration an analytic Jacobian fill (column-wise), a banded
// QR-elimination over neighboring columns, and vector solves/updates.
var HYBRJ = register(&Program{
	Name: "HYBRJ",
	Description: "MINPACK Powell-hybrid iteration structure: Jacobian " +
		"fill, banded column elimination, vector updates",
	Sets: []Set{
		// Everything inside the outer iteration is re-referenced by the
		// dogleg phase (the Jacobian diagonal spans most FJ pages), so the
		// canonical set honors the outer-iteration locality.
		{Name: "HYBRJ", Level: 4},
	},
	Source: `
PROGRAM HYBRJ
PARAMETER (N = 80)
DIMENSION X(N), F(N), FJ(N,N), QTF(N), DG(N)
DO 10 I = 1, N
  X(I) = 0.5
  DG(I) = 1.0
10 CONTINUE
DO 200 IT = 1, 4
C   residuals
  DO 20 I = 1, N
    F(I) = X(I) * (3.0 - 2.0 * X(I)) + 1.0
20 CONTINUE
C   analytic Jacobian, column-wise fill
  DO 40 J = 1, N
    DO 30 I = 1, N
      FJ(I,J) = 0.01 * FLOAT(I - J)
30  CONTINUE
    FJ(J,J) = 3.0 - 4.0 * X(J)
40 CONTINUE
C   banded elimination: each column reduces its next three neighbors
  DO 80 J = 1, N - 1
    PIV = FJ(J,J)
    IF (ABS(PIV) .LT. 0.0001) PIV = 0.0001
    DO 70 K = J + 1, MIN(J + 3, N)
      FAC = FJ(J,K) / PIV
      DO 60 I = J, N
        FJ(I,K) = FJ(I,K) - FAC * FJ(I,J)
60    CONTINUE
70  CONTINUE
80 CONTINUE
C   Q'f accumulation and damped update
  DO 110 J = 1, N
    ACC = 0.0
    DO 100 I = 1, N
      ACC = ACC + FJ(I,J) * F(I)
100 CONTINUE
    QTF(J) = ACC
110 CONTINUE
C   dogleg trial steps: a long vector-only phase reusing the band diagonal
  DO 150 M = 1, 12
    DO 130 I = 1, N
      DG(I) = 0.9 * DG(I) + 0.1 * ABS(FJ(I,I)) + 0.0001
130 CONTINUE
    DO 140 I = 1, N
      X(I) = X(I) - 0.001 * QTF(I) / DG(I)
      F(I) = X(I) * (3.0 - 2.0 * X(I)) + 1.0
140 CONTINUE
150 CONTINUE
200 CONTINUE
END
`,
})

// CONDUCT: a 2-D heat-conduction relaxation on a 90x90 grid. The virtual
// space totals 270 pages, matching the size the paper reports for its
// CONDUCT program. Each step does a column-wise stencil sweep, a row-wise
// boundary-flux pass, and a copy-back.
var CONDUCT = register(&Program{
	Name: "CONDUCT",
	Description: "2-D heat conduction: column-wise stencil relaxation, " +
		"row-wise flux pass, copy-back per time step (V = 270 pages)",
	Sets: []Set{
		{Name: "CONDUCT", Level: 2},
	},
	Source: `
PROGRAM CONDUCT
PARAMETER (NG = 90)
DIMENSION T(NG,NG), TN(NG,NG), COEF(90,6), QL(90), QR(90), SRC(64)
DO 20 J = 1, NG
  DO 10 I = 1, NG
    T(I,J) = 100.0 * EXP(-0.001 * FLOAT((I - 45) * (I - 45) + (J - 45) * (J - 45)))
    TN(I,J) = 0.0
10 CONTINUE
20 CONTINUE
DO 30 I = 1, 90
  QL(I) = 0.0
  QR(I) = 0.0
30 CONTINUE
DO 35 J = 1, 6
  DO 34 I = 1, 90
    COEF(I,J) = 0.2
34 CONTINUE
35 CONTINUE
DO 38 I = 1, 64
  SRC(I) = 1.0
38 CONTINUE
DO 200 IT = 1, 5
C   column-wise interior stencil
  DO 60 J = 2, NG - 1
    DO 50 I = 2, NG - 1
      TN(I,J) = T(I,J) + 0.2 * (T(I-1,J) + T(I+1,J) + T(I,J-1) + T(I,J+1) - 4.0 * T(I,J))
50  CONTINUE
60 CONTINUE
C   copy-back, column-wise
  DO 100 J = 2, NG - 1
    DO 90 I = 2, NG - 1
      T(I,J) = TN(I,J)
90  CONTINUE
100 CONTINUE
200 CONTINUE
C ---- final energy balance: one row-wise flux accumulation over the
C ---- steady field (the row working set spans the whole grid width)
DO 300 K = 1, 2
  DO 280 I = 2, NG - 1
    QL(I) = 0.0
    DO 270 J = 2, NG - 1
      QL(I) = QL(I) + COEF(I,1) * TN(I,J)
270 CONTINUE
    QR(I) = QL(I) * 0.5
280 CONTINUE
300 CONTINUE
END
`,
})

// HWSCRT: the FISHPACK Helmholtz solver on a Cartesian grid — line
// relaxation alternating column tridiagonal-style sweeps with row sweeps.
// The virtual space totals 69 pages, matching the paper's HWSCRT.
var HWSCRT = register(&Program{
	Name: "HWSCRT",
	Description: "FISHPACK-style Helmholtz solver: alternating column " +
		"and row line sweeps on a 64x64 grid (V = 69 pages)",
	Sets: []Set{
		// The boundary row sweep is honored at its nest level (66 pages);
		// the column line solves stream at the innermost stratum.
		{Name: "HWSCRT", Level: 2, Overrides: map[string]int{"40": 1, "50": 1, "60": 1}},
	},
	Source: `
PROGRAM HWSCRT
PARAMETER (NG = 64)
DIMENSION F(NG,NG), BDA(NG), BDB(NG), BDC(NG), BDD(NG), W(NG)
DO 20 J = 1, NG
  DO 10 I = 1, NG
    F(I,J) = SIN(0.1 * FLOAT(I)) * COS(0.1 * FLOAT(J))
10 CONTINUE
20 CONTINUE
DO 30 I = 1, NG
  BDA(I) = 0.0
  BDB(I) = 0.0
  BDC(I) = 1.0
  BDD(I) = 1.0
  W(I) = 0.0
30 CONTINUE
C ---- boundary application: one row-direction sweep couples every
C ---- column, so the whole grid is the working set while it runs
DO 90 I = 1, NG
  W(1) = F(I,1) + BDC(I)
  DO 70 J = 2, NG
    W(J) = F(I,J) - 0.4 * W(J-1)
70 CONTINUE
  F(I,NG) = W(NG) + BDD(I)
  DO 80 J = NG - 1, 1, -1
    F(I,J) = W(J) - 0.4 * F(I,J+1)
80 CONTINUE
90 CONTINUE
C ---- iterated column line solves: small per-column working sets ----
DO 200 IT = 1, 4
  DO 160 K = 1, 3
    DO 60 J = 1, NG
      W(1) = F(1,J) + BDA(J)
      DO 40 I = 2, NG
        W(I) = F(I,J) - 0.4 * W(I-1)
40    CONTINUE
      F(NG,J) = W(NG) + BDB(J)
      DO 50 I = NG - 1, 1, -1
        F(I,J) = W(I) - 0.4 * F(I+1,J)
50    CONTINUE
60  CONTINUE
160 CONTINUE
200 CONTINUE
END
`,
})
