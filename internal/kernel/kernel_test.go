package kernel

import (
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"cdmm/internal/directive"
	"cdmm/internal/engine"
)

// testConfig is the base chaos-free checked configuration the tests
// perturb.
func testConfig(tenants int) Config {
	return Config{
		Tenants: tenants,
		Seed:    1,
		Scale:   0.25,
		Checked: true,
	}
}

func mustRun(t *testing.T, cfg Config, eng *engine.Engine) *Result {
	t.Helper()
	res, err := Run(cfg, eng)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestSynthSpecDeterministicAndValid(t *testing.T) {
	for id := 0; id < 50; id++ {
		a := NewSynthSpec(7, id, 1)
		b := NewSynthSpec(7, id, 1)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("spec %d not deterministic: %+v vs %+v", id, a, b)
		}
		if a.Est <= 0 || a.V < a.Est {
			t.Fatalf("spec %d: Est=%d V=%d", id, a.Est, a.V)
		}
		for _, ph := range a.Phases {
			arms := []directive.Arm{{PI: 2, X: ph.W + ph.Lock}, {PI: 1, X: ph.W}}
			if err := directive.ValidateArms(arms, a.V); err != nil {
				t.Fatalf("spec %d: invalid arms %v: %v", id, arms, err)
			}
		}
		tr := a.Materialize()
		if tr.Refs != a.Refs {
			t.Fatalf("spec %d: materialized %d refs, spec says %d", id, tr.Refs, a.Refs)
		}
	}
}

// TestDeterministicAcrossWorkers is the acceptance criterion's core:
// the full Result — per-tenant accounting, violation lists, the rendered
// summary — must be byte-identical whether the shards run on one worker
// or eight.
func TestDeterministicAcrossWorkers(t *testing.T) {
	cfg := testConfig(64)
	cfg.Shards = 4
	cfg.Chaos = Chaos{Kill: true, Oscillate: true, Corrupt: true, Intensity: 0.8}
	a := mustRun(t, cfg, engine.New(1))
	b := mustRun(t, cfg, engine.New(8))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("results differ across -j:\n%v\nvs\n%v", a, b)
	}
	if a.String() != b.String() {
		t.Fatalf("summaries differ across -j")
	}
}

func TestSeedStability(t *testing.T) {
	cfg := testConfig(48)
	a := mustRun(t, cfg, engine.New(2))
	b := mustRun(t, cfg, engine.New(2))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different results")
	}
	cfg.Seed = 2
	c := mustRun(t, cfg, engine.New(2))
	if a.Faults == c.Faults && a.Refs == c.Refs && a.MemSum == c.MemSum {
		t.Fatalf("different seeds produced identical accounting (refs=%d pf=%d)", a.Refs, a.Faults)
	}
}

// TestCleanOvercommit: at the default overcommit of 4 with no chaos,
// every tenant completes, nothing is shed or starved, and checked mode
// records zero violations.
func TestCleanOvercommit(t *testing.T) {
	cfg := testConfig(128)
	res := mustRun(t, cfg, engine.New(4))
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Done != int64(cfg.Tenants) || res.Shed != 0 {
		t.Fatalf("done=%d shed=%d want done=%d shed=0", res.Done, res.Shed, cfg.Tenants)
	}
	if res.Starved != 0 {
		t.Fatalf("starved=%d (max suspend wait %d, bound %d)", res.Starved, res.MaxSuspendWait, res.StarveBound)
	}
	if res.Refs == 0 || res.Faults == 0 {
		t.Fatalf("degenerate run: refs=%d pf=%d", res.Refs, res.Faults)
	}
	for _, tr := range res.PerTenant {
		if tr.State != "done" {
			t.Fatalf("tenant %s final state %s", tr.Name, tr.State)
		}
	}
}

// TestBoundedWait pins the aging scheduler's starvation guarantee under
// heavier overcommit: no suspension wait may exceed the starve bound.
func TestBoundedWait(t *testing.T) {
	cfg := testConfig(96)
	cfg.Overcommit = 8
	res := mustRun(t, cfg, engine.New(4))
	if res.MaxSuspendWait > res.StarveBound {
		t.Fatalf("max suspend wait %d exceeds bound %d", res.MaxSuspendWait, res.StarveBound)
	}
	if res.Starved != 0 {
		t.Fatalf("starved=%d", res.Starved)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

// TestChaosMatrix runs every chaos combination through checked mode: the
// kernel must absorb kills, capacity oscillation and corrupt directive
// streams by restarting, degrading or shedding — never by violating an
// invariant or leaving a tenant unfinished.
func TestChaosMatrix(t *testing.T) {
	combos := []Chaos{
		{Kill: true},
		{Oscillate: true},
		{Corrupt: true},
		{Kill: true, Oscillate: true},
		{Kill: true, Corrupt: true},
		{Oscillate: true, Corrupt: true},
		{Kill: true, Oscillate: true, Corrupt: true},
	}
	for _, c := range combos {
		c.Intensity = 1
		cfg := testConfig(96)
		cfg.Chaos = c
		res := mustRun(t, cfg, engine.New(4))
		if len(res.Violations) != 0 {
			t.Fatalf("chaos %+v: violations: %v", c, res.Violations)
		}
		if res.Done+res.Shed != int64(cfg.Tenants) {
			t.Fatalf("chaos %+v: done=%d shed=%d want sum %d", c, res.Done, res.Shed, cfg.Tenants)
		}
		if res.Starved != 0 {
			t.Fatalf("chaos %+v: starved=%d", c, res.Starved)
		}
		if c.Kill && res.Kills == 0 {
			t.Fatalf("chaos %+v: kill enabled at intensity 1 but no kills over %d tenants", c, cfg.Tenants)
		}
		if c.Corrupt && res.Degraded == 0 {
			t.Fatalf("chaos %+v: corrupt enabled at intensity 1 but no degradations", c)
		}
	}
}

// TestComparisonPools: the LRU and WS pools (the overload study's
// baselines) complete cleanly under the same kernel.
func TestComparisonPools(t *testing.T) {
	for _, pool := range []string{"lru", "ws"} {
		cfg := testConfig(64)
		cfg.Pool = pool
		res := mustRun(t, cfg, engine.New(4))
		if len(res.Violations) != 0 {
			t.Fatalf("pool %s: violations: %v", pool, res.Violations)
		}
		if res.Done != int64(cfg.Tenants) {
			t.Fatalf("pool %s: done=%d want %d", pool, res.Done, cfg.Tenants)
		}
	}
}

// TestOversizeShed: an explicit frame pool smaller than some tenants'
// declared estimates sheds exactly those tenants and completes the rest.
func TestOversizeShed(t *testing.T) {
	cfg := testConfig(64)
	cfg.Frames = 64
	cfg.Shards = 4 // 16 frames per shard: estimates above that are shed
	res := mustRun(t, cfg, engine.New(2))
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Done+res.Shed != int64(cfg.Tenants) {
		t.Fatalf("done=%d shed=%d want sum %d", res.Done, res.Shed, cfg.Tenants)
	}
	if res.Shed == 0 {
		t.Fatalf("expected oversize tenants at 16 frames/shard, none shed")
	}
	for _, tr := range res.PerTenant {
		if tr.State == "shed" && tr.Est <= 16 {
			t.Fatalf("tenant %s (est %d) shed despite fitting", tr.Name, tr.Est)
		}
	}
}

func TestLedgerConservation(t *testing.T) {
	cfg := testConfig(64)
	res := mustRun(t, cfg, engine.New(2))
	l := res.Ledger(16)
	if err := l.Conservation(); err != nil {
		t.Fatalf("ledger conservation: %v", err)
	}
	if len(l.Sites) == 0 || len(l.Sites) > 16 {
		t.Fatalf("ledger sites: %d", len(l.Sites))
	}
}

// TestKernelSoak is the CI soak: 10k tenants, full chaos, checked mode,
// goroutine-leak checked. Gated behind CDMM_KERNEL_SOAK=1 so the tier-1
// suite stays fast.
func TestKernelSoak(t *testing.T) {
	if os.Getenv("CDMM_KERNEL_SOAK") != "1" {
		t.Skip("set CDMM_KERNEL_SOAK=1 to run the kernel soak")
	}
	before := runtime.NumGoroutine()
	cfg := Config{
		Tenants: 10000,
		Seed:    1,
		Checked: true,
		Chaos:   Chaos{Kill: true, Oscillate: true, Corrupt: true, Intensity: 0.8},
	}
	res := mustRun(t, cfg, engine.New(runtime.GOMAXPROCS(0)))
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Done+res.Shed != int64(cfg.Tenants) {
		t.Fatalf("done=%d shed=%d want sum %d", res.Done, res.Shed, cfg.Tenants)
	}
	if res.Starved != 0 {
		t.Fatalf("starved=%d (max wait %d, bound %d)", res.Starved, res.MaxSuspendWait, res.StarveBound)
	}
	// Engine workers park between maps; give them a beat, then require
	// the goroutine count back near the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}
