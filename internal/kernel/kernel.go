package kernel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cdmm/internal/attr"
	"cdmm/internal/engine"
	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
	"cdmm/internal/vmsim"
)

// Config parameterizes a kernel run. The zero value is not runnable;
// set Tenants and call Run, which applies the documented defaults.
type Config struct {
	// Tenants is the population size.
	Tenants int
	// Frames is the global frame pool. 0 derives it from Overcommit:
	// Σ declared estimates / Overcommit (each shard's slice is widened to
	// fit its largest tenant so a default-sized run never sheds).
	Frames int
	// Overcommit is the estimate-to-frames ratio used when Frames is 0.
	// Defaults to 4: the population declares four times the memory that
	// exists.
	Overcommit float64
	// Shards is the partition count; determinism is a function of the
	// shard count, never of -j. 0 picks ~one shard per 256 tenants,
	// clamped to [1, 64].
	Shards int
	// Seed drives every synthetic draw and chaos decision.
	Seed uint64
	// Pool selects the per-tenant policy: "cd" (default), "lru", "ws".
	Pool string
	// Level is the CD directive stratum (ArmSelector level). Default 2:
	// honor the outer-arm request when memory allows.
	Level int
	// Quantum is the scheduler quantum in references. Default 512.
	Quantum int
	// Scale multiplies per-tenant reference counts (quick runs use <1).
	// Default 1.
	Scale float64

	// AdmitHi closes the admission gate when the admitted estimate sum
	// would exceed AdmitHi × frames; AdmitLo reopens it below AdmitLo ×
	// frames. Defaults 1.0 and 0.85.
	AdmitHi, AdmitLo float64
	// AgingTicks bounds suspension: the suspension-FIFO head is force-
	// resumed after waiting this long, whatever the pressure. Default
	// 256 × FaultService.
	AgingTicks int64
	// StarveBound is the wait above which a resume counts as starved.
	// Default AgingTicks + 16 × Quantum — the scheduler's provable bound
	// with margin (see the bounded-wait test).
	StarveBound int64
	// SwapInDelay is charged to a tenant at suspension. Default
	// FaultService.
	SwapInDelay int64
	// ThrashWindow (references) and ThrashRate (faults per 1000
	// references) parameterize the thrash watermark. Defaults 32768 and
	// 400.
	ThrashWindow int
	ThrashRate   float64
	// MaxRestarts bounds chaos kill-restarts per tenant. Default 1.
	MaxRestarts int
	// Checked enables the kernel-wide invariant checks (lock audits,
	// frame conservation, residency bounds). Violations are collected on
	// the Result, never panicked.
	Checked bool
	// Chaos selects fault injection.
	Chaos Chaos

	// Telemetry enables the distributional telemetry plane: latency
	// histograms, heavy-hitter sketches, SLO counters and the flight
	// recorder. Off (the default), the hot loop pays one nil check per
	// hook; on, collection is shard-local integer state merged at the
	// run barrier, so results stay byte-identical at any -j and
	// identical to a telemetry-off run.
	Telemetry bool
	// TopK is the heavy-hitter sketch capacity per dimension. Default 64.
	TopK int
	// SLOAdmitWait is the admission-wait objective in virtual ticks: an
	// admission within it counts good, beyond it bad. Default
	// 256 × FaultService.
	SLOAdmitWait int64
	// SLOFaultRate is the fault-rate objective in faults per 1000
	// references, scored per closed thrash window. Default ThrashRate/2.
	SLOFaultRate float64
	// SLOBudget is the allowed bad fraction per objective (the error
	// budget burn rate divides by it). Default 0.1.
	SLOBudget float64
	// FlightEvents is the per-shard flight-recorder ring capacity.
	// Default 64.
	FlightEvents int
	// MaxIncidents bounds captured incident dumps per shard; further
	// triggers are counted, not stored. Default 4.
	MaxIncidents int
	// Publish, when non-nil, receives live telemetry during the run and
	// the final view at the barrier (the serve plane's /kernel source).
	// Setting it implies Telemetry.
	Publish *TelemetryStore
}

// withDefaults returns a copy with the documented defaults applied.
func (c Config) withDefaults() Config {
	if c.Overcommit <= 0 {
		c.Overcommit = 4
	}
	if c.Pool == "" {
		c.Pool = "cd"
	}
	if c.Level <= 0 {
		c.Level = 2
	}
	if c.Quantum <= 0 {
		c.Quantum = 512
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.AdmitHi <= 0 {
		c.AdmitHi = 1.0
	}
	if c.AdmitLo <= 0 || c.AdmitLo > c.AdmitHi {
		c.AdmitLo = 0.85 * c.AdmitHi
	}
	if c.AgingTicks <= 0 {
		c.AgingTicks = 256 * policy.FaultService
	}
	if c.StarveBound <= 0 {
		c.StarveBound = c.AgingTicks + 16*int64(c.Quantum)
	}
	if c.SwapInDelay <= 0 {
		c.SwapInDelay = policy.FaultService
	}
	if c.ThrashWindow <= 0 {
		c.ThrashWindow = 32768
	}
	if c.ThrashRate <= 0 {
		c.ThrashRate = 400
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 1
	}
	if c.Publish != nil {
		c.Telemetry = true
	}
	if c.TopK <= 0 {
		c.TopK = 64
	}
	if c.SLOAdmitWait <= 0 {
		c.SLOAdmitWait = 256 * policy.FaultService
	}
	if c.SLOFaultRate <= 0 {
		c.SLOFaultRate = c.ThrashRate / 2
	}
	if c.SLOBudget <= 0 {
		c.SLOBudget = 0.1
	}
	if c.FlightEvents <= 0 {
		c.FlightEvents = 64
	}
	if c.MaxIncidents <= 0 {
		c.MaxIncidents = 4
	}
	return c
}

// defaultShards picks ~one shard per 256 tenants, clamped to [1, 64].
// A function of the population alone — never of GOMAXPROCS — so results
// do not depend on the machine.
func defaultShards(tenants int) int {
	s := (tenants + 255) / 256
	if s < 1 {
		s = 1
	}
	if s > 64 {
		s = 64
	}
	return s
}

// newTenantPolicy builds a tenant's pool policy. Only CD tenants get a
// validator and an Avail hook; LRU tenants run a fixed partition sized
// to their declared estimate, WS tenants the directive-blind default
// window — the comparison pools of the overload study.
func newTenantPolicy(cfg *Config, spec *SynthSpec) (policy.Policy, *policy.CD) {
	switch cfg.Pool {
	case "lru":
		return policy.NewLRU(spec.Est), nil
	case "ws":
		return policy.NewWS(policy.DefaultFallbackTau), nil
	default:
		cd := policy.NewCD(policy.SelectLevel(cfg.Level), 2)
		cd.Check = &policy.CheckConfig{MaxPage: spec.V}
		return cd, cd
	}
}

// Violation is one recorded invariant breach.
type Violation struct {
	Shard  int    `json:"shard"`
	Kind   string `json:"kind"`
	Tenant string `json:"tenant,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// String renders the violation.
func (v Violation) String() string {
	s := fmt.Sprintf("shard %d: %s", v.Shard, v.Kind)
	if v.Tenant != "" {
		s += " tenant " + v.Tenant
	}
	if v.Detail != "" {
		s += ": " + v.Detail
	}
	return s
}

// Result is the kernel run's aggregate accounting, merged from the
// shard results in shard order — deterministic across -j and repeated
// seeds by construction.
type Result struct {
	Tenants    int     `json:"tenants"`
	Frames     int     `json:"frames"`
	Shards     int     `json:"shards"`
	Seed       uint64  `json:"seed"`
	Pool       string  `json:"pool"`
	Overcommit float64 `json:"overcommit"`

	Refs   int64 `json:"refs"`
	Faults int64 `json:"pf"`
	MemSum int64 `json:"memSum"`
	VTime  int64 `json:"vtime"`
	// Makespan is the largest shard clock at shutdown.
	Makespan int64 `json:"makespan"`
	Idle     int64 `json:"idle"`

	Admitted        int64 `json:"admitted,omitempty"`
	Done            int64 `json:"done,omitempty"`
	Shed            int64 `json:"shed,omitempty"`
	Suspends        int64 `json:"suspends,omitempty"`
	Resumes         int64 `json:"resumes,omitempty"`
	ReclaimWaves    int64 `json:"reclaimWaves,omitempty"`
	ReclaimedFrames int64 `json:"reclaimedFrames,omitempty"`
	Kills           int64 `json:"kills,omitempty"`
	Restarts        int64 `json:"restarts,omitempty"`
	Degraded        int64 `json:"degraded,omitempty"`
	SwapSignals     int64 `json:"swapSignals,omitempty"`
	LockReleases    int64 `json:"lockReleases,omitempty"`
	ThrashEvents    int64 `json:"thrashEvents,omitempty"`
	Overruns        int64 `json:"overruns,omitempty"`

	MaxQueueWait   int64 `json:"maxQueueWait"`
	MaxSuspendWait int64 `json:"maxSuspendWait"`
	StarveBound    int64 `json:"starveBound"`
	Starved        int64 `json:"starved"`

	Violations []Violation    `json:"violations,omitempty"`
	PerTenant  []TenantResult `json:"perTenant,omitempty"`

	// Telemetry is the merged telemetry snapshot (nil when the plane is
	// off); Incidents are the flight-recorder dumps in shard order.
	// Neither feeds back into the scheduler, so the fields above are
	// byte-identical whether or not these are collected.
	Telemetry        *TelemetrySnapshot `json:"telemetry,omitempty"`
	Incidents        []Incident         `json:"incidents,omitempty"`
	IncidentsDropped int64              `json:"incidentsDropped,omitempty"`
}

// FaultRate returns faults per 1000 references.
func (r *Result) FaultRate() float64 {
	if r.Refs == 0 {
		return 0
	}
	return float64(r.Faults) * 1000 / float64(r.Refs)
}

// String renders the deterministic run summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel: %d tenants, %d frames, %d shards, pool %s, overcommit %.2f, seed %d\n",
		r.Tenants, r.Frames, r.Shards, r.Pool, r.Overcommit, r.Seed)
	fmt.Fprintf(&b, "refs=%d pf=%d (%.2f/1k refs) memsum=%d makespan=%d idle=%d\n",
		r.Refs, r.Faults, r.FaultRate(), r.MemSum, r.Makespan, r.Idle)
	fmt.Fprintf(&b, "admitted=%d done=%d shed=%d suspends=%d resumes=%d reclaim-waves=%d reclaimed=%d\n",
		r.Admitted, r.Done, r.Shed, r.Suspends, r.Resumes, r.ReclaimWaves, r.ReclaimedFrames)
	fmt.Fprintf(&b, "kills=%d restarts=%d degraded=%d swap-signals=%d lock-releases=%d thrash=%d overruns=%d\n",
		r.Kills, r.Restarts, r.Degraded, r.SwapSignals, r.LockReleases, r.ThrashEvents, r.Overruns)
	fmt.Fprintf(&b, "max-queue-wait=%d max-suspend-wait=%d (starve bound %d) starved=%d violations=%d",
		r.MaxQueueWait, r.MaxSuspendWait, r.StarveBound, r.Starved, len(r.Violations))
	for i, v := range r.Violations {
		if i == 8 {
			fmt.Fprintf(&b, "\n  ... and %d more", len(r.Violations)-8)
			break
		}
		fmt.Fprintf(&b, "\n  VIOLATION %s", v.String())
	}
	if top := r.topFaulters(5); len(top) > 0 {
		b.WriteString("\ntop faulters:")
		for _, t := range top {
			fmt.Fprintf(&b, " %s(pf=%d)", t.Name, t.Faults)
		}
	}
	return b.String()
}

// topFaulters returns the k tenants with the most faults (ties by id).
func (r *Result) topFaulters(k int) []TenantResult {
	out := append([]TenantResult(nil), r.PerTenant...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Faults != out[j].Faults {
			return out[i].Faults > out[j].Faults
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	for len(out) > 0 && out[len(out)-1].Faults == 0 {
		out = out[:len(out)-1]
	}
	return out
}

// Ledger builds a per-tenant attribution ledger: the top k tenants by
// fault count become sites (Nest = tenant name), everything else folds
// into the unattributed bucket, so Conservation holds while the serve
// plane's per-site scrape series stay cardinality-bounded however large
// the population.
func (r *Result) Ledger(k int) *attr.Ledger {
	top := r.topFaulters(k)
	sites := make([]trace.Site, len(top))
	for i, t := range top {
		sites[i] = trace.Site{Nest: t.Name}
	}
	l := attr.NewLedger("kernel", r.Pool, sites)
	named := make(map[string]int, len(top))
	for i, t := range top {
		named[t.Name] = i
	}
	for _, t := range r.PerTenant {
		slot := l.Slot(trace.NoSite)
		if i, ok := named[t.Name]; ok {
			slot = l.Slot(int32(i))
		}
		slot.Refs += t.Refs
		slot.Faults += int(t.Faults)
		slot.MemSum += float64(t.MemSum)
		slot.VTime += t.VTime
	}
	l.Refs = int(r.Refs)
	l.Faults = int(r.Faults)
	l.MemSum = float64(r.MemSum)
	l.VirtualTime = r.VTime
	return l
}

// liveGauges publishes the kernel's live tenant-state counts
// (cdmm_kernel_tenants_* via the serve plane). Shards update the shared
// atomic cells on every transition and flush them into the gauges at
// progress cadence. A nil *liveGauges (unobserved run) is a no-op.
type liveGauges struct {
	queued, running, suspended, degraded atomic.Int64

	gQueued, gRunning, gSuspended, gDegraded *obs.Gauge
}

func newLiveGauges(reg *obs.Registry) *liveGauges {
	return &liveGauges{
		gQueued:    reg.Gauge("kernel_tenants_queued"),
		gRunning:   reg.Gauge("kernel_tenants_resident"),
		gSuspended: reg.Gauge("kernel_tenants_suspended"),
		gDegraded:  reg.Gauge("kernel_tenants_degraded"),
	}
}

func (g *liveGauges) addQueued(n int64) {
	if g != nil {
		g.queued.Add(n)
	}
}

func (g *liveGauges) admit() {
	if g != nil {
		g.queued.Add(-1)
		g.running.Add(1)
	}
}

func (g *liveGauges) suspendFromRunning() {
	if g != nil {
		g.running.Add(-1)
		g.suspended.Add(1)
	}
}

func (g *liveGauges) resumeToRunning() {
	if g != nil {
		g.suspended.Add(-1)
		g.running.Add(1)
	}
}

func (g *liveGauges) finishFromRunning() {
	if g != nil {
		g.running.Add(-1)
	}
}

func (g *liveGauges) killToQueued() {
	if g != nil {
		g.running.Add(-1)
		g.queued.Add(1)
	}
}

func (g *liveGauges) shedFromQueued() {
	if g != nil {
		g.queued.Add(-1)
	}
}

func (g *liveGauges) degrade() {
	if g != nil {
		g.degraded.Add(1)
	}
}

func (g *liveGauges) flush() {
	if g == nil {
		return
	}
	g.gQueued.Set(float64(g.queued.Load()))
	g.gRunning.Set(float64(g.running.Load()))
	g.gSuspended.Set(float64(g.suspended.Load()))
	g.gDegraded.Set(float64(g.degraded.Load()))
}

// Run executes the kernel: synthesize the population, partition it into
// shards, run the shards on the engine's worker pool, and merge the
// results in shard order. The returned Result (including violation and
// per-tenant ordering) is byte-identical at any -j.
func Run(cfg Config, eng *engine.Engine) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Tenants <= 0 {
		return nil, fmt.Errorf("kernel: Tenants must be positive (got %d)", cfg.Tenants)
	}

	specs := make([]SynthSpec, cfg.Tenants)
	estSum := 0
	for i := range specs {
		specs[i] = NewSynthSpec(cfg.Seed, i, cfg.Scale)
		estSum += specs[i].Est
	}

	shards := cfg.Shards
	if shards <= 0 {
		shards = defaultShards(cfg.Tenants)
	}
	if shards > cfg.Tenants {
		shards = cfg.Tenants
	}

	// Partition tenants by id and split the pool evenly; a derived pool
	// widens any shard slice below its own largest estimate so default
	// runs never shed for geometry alone. An explicit Frames is honored
	// exactly — oversize tenants are then shed, by design.
	perShard := make([][]SynthSpec, shards)
	for i := range specs {
		perShard[i%shards] = append(perShard[i%shards], specs[i])
	}
	frames := cfg.Frames
	derived := frames <= 0
	if derived {
		frames = int(float64(estSum) / cfg.Overcommit)
		if frames < 16 {
			frames = 16
		}
	}
	shardFrames := make([]int, shards)
	for i := range shardFrames {
		shardFrames[i] = frames / shards
		if i < frames%shards {
			shardFrames[i]++
		}
		if shardFrames[i] < 2 {
			shardFrames[i] = 2
		}
		if derived {
			for _, s := range perShard[i] {
				if s.Est > shardFrames[i] {
					shardFrames[i] = s.Est
				}
			}
		}
	}
	totalFrames := 0
	for _, f := range shardFrames {
		totalFrames += f
	}

	eng = engine.Or(eng)
	var gaugesOnce sync.Once
	var gauges *liveGauges

	cfg.Publish.begin(fmt.Sprintf("kernel/%s tenants=%d seed=%d", cfg.Pool, cfg.Tenants, cfg.Seed), cfg, shards)

	idxs := make([]int, shards)
	for i := range idxs {
		idxs[i] = i
	}
	shardResults, err := engine.MapNamed(eng, "kernel", idxs, func(rc *engine.RunCtx, i int) (*shardResult, error) {
		rc.Describe(fmt.Sprintf("kernel/shard%02d", i), cfg.Pool)
		var o *obs.Observer
		if rc.Obs != nil && rc.Obs.Enabled() {
			o = rc.Obs
		}
		// The engine hands every run the same Metrics registry, so the
		// first shard through the Once creates the shared gauges and the
		// Once's barrier publishes them to the rest.
		gaugesOnce.Do(func() {
			if o != nil && o.Metrics != nil {
				gauges = newLiveGauges(o.Metrics)
			}
		})
		sh := newShard(&cfg, i, shardFrames[i], perShard[i], o, gauges)
		res := sh.run(obs.ProgressOf(rc.Obs))
		if o != nil && o.Metrics != nil {
			addShardMetrics(o.Metrics, res)
		}
		rc.Report(vmsim.Result{
			Policy: cfg.Pool, Refs: int(res.Refs), Faults: int(res.Faults),
			MemSum: float64(res.MemSum), VirtualTime: res.VTime,
		})
		return res, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Tenants:     cfg.Tenants,
		Frames:      totalFrames,
		Shards:      shards,
		Seed:        cfg.Seed,
		Pool:        cfg.Pool,
		Overcommit:  cfg.Overcommit,
		StarveBound: cfg.StarveBound,
		PerTenant:   make([]TenantResult, cfg.Tenants),
	}
	for _, sr := range shardResults {
		res.Refs += sr.Refs
		res.Faults += sr.Faults
		res.MemSum += sr.MemSum
		res.VTime += sr.VTime
		res.Idle += sr.Idle
		if sr.Clock > res.Makespan {
			res.Makespan = sr.Clock
		}
		res.Admitted += sr.Admitted
		res.Done += sr.Done
		res.Shed += sr.Shed
		res.Suspends += sr.Suspends
		res.Resumes += sr.Resumes
		res.ReclaimWaves += sr.ReclaimWaves
		res.ReclaimedFrames += sr.ReclaimedFrames
		res.Kills += sr.Kills
		res.Restarts += sr.Restarts
		res.Degraded += sr.Degraded
		res.SwapSignals += sr.SwapSignals
		res.LockReleases += sr.LockReleases
		res.ThrashEvents += sr.ThrashEvents
		res.Overruns += sr.Overruns
		if sr.MaxQueueWait > res.MaxQueueWait {
			res.MaxQueueWait = sr.MaxQueueWait
		}
		if sr.MaxSuspendWait > res.MaxSuspendWait {
			res.MaxSuspendWait = sr.MaxSuspendWait
		}
		res.Starved += sr.Starved
		res.Violations = append(res.Violations, sr.Violations...)
		res.Incidents = append(res.Incidents, sr.Incidents...)
		res.IncidentsDropped += sr.IncidentsDropped
		for _, t := range sr.Tenants {
			res.PerTenant[t.ID] = t
		}
	}
	if cfg.Telemetry {
		merged := newTelem(&cfg)
		for _, sr := range shardResults {
			merged.merge(sr.Telem)
		}
		res.Telemetry = merged.snapshot(&cfg)
		cfg.Publish.publishFinal(&TelemetryView{
			Run:              fmt.Sprintf("kernel/%s tenants=%d seed=%d", cfg.Pool, cfg.Tenants, cfg.Seed),
			Final:            true,
			Incidents:        len(res.Incidents),
			IncidentsDropped: res.IncidentsDropped,
			Telemetry:        res.Telemetry,
		})
	}
	return res, nil
}

// addShardMetrics folds a completed shard's totals into the registry's
// kernel counters (atomic adds: order-independent totals at any -j).
func addShardMetrics(reg *obs.Registry, sr *shardResult) {
	reg.Counter("kernel_refs").Add(sr.Refs)
	reg.Counter("kernel_faults").Add(sr.Faults)
	reg.Counter("kernel_admitted").Add(sr.Admitted)
	reg.Counter("kernel_done").Add(sr.Done)
	reg.Counter("kernel_shed").Add(sr.Shed)
	reg.Counter("kernel_suspends").Add(sr.Suspends)
	reg.Counter("kernel_resumes").Add(sr.Resumes)
	reg.Counter("kernel_reclaim_waves").Add(sr.ReclaimWaves)
	reg.Counter("kernel_reclaimed_frames").Add(sr.ReclaimedFrames)
	reg.Counter("kernel_kills").Add(sr.Kills)
	reg.Counter("kernel_degraded").Add(sr.Degraded)
	reg.Counter("kernel_thrash_events").Add(sr.ThrashEvents)
	reg.Counter("kernel_starved").Add(sr.Starved)
	reg.Counter("kernel_violations").Add(int64(len(sr.Violations)))
	if sr.Telem != nil {
		reg.Counter("kernel_slo_admit_good").Add(sr.Telem.admitGood)
		reg.Counter("kernel_slo_admit_bad").Add(sr.Telem.admitBad)
		reg.Counter("kernel_slo_rate_good").Add(sr.Telem.rateGood)
		reg.Counter("kernel_slo_rate_bad").Add(sr.Telem.rateBad)
		reg.Counter("kernel_incidents").Add(int64(len(sr.Incidents)))
	}
}
