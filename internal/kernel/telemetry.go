package kernel

import (
	"fmt"
	"strings"
	"sync"

	"cdmm/internal/obs"
)

// The kernel's telemetry plane turns the end-of-run aggregates into
// distributions: per-shard log2 histograms of the latencies that matter
// operationally (fault service, admission wait, suspension duration,
// reclaim yield, resident occupancy), space-saving heavy-hitter sketches
// of the tenants responsible (by faults, frame usage and displacement),
// and SLO counters with burn-rate accounting. Everything is collected in
// shard-local integer state — no locks, no atomics, no floats in the hot
// loop — and merged shard→global in shard order at the run barrier, so a
// telemetry-on run is byte-identical at any -j and its core results are
// byte-identical to a telemetry-off run.

// telem is one shard's telemetry collection state. All values are in
// virtual time (ticks) or integral units; nothing here depends on wall
// clocks or scheduling, which is what keeps the plane deterministic.
type telem struct {
	faultLat     obs.Log2Hist // per-quantum fault-service latency (faults × FaultService)
	admitWait    obs.Log2Hist // queued → admitted, per admission
	suspDur      obs.Log2Hist // suspended → resumed, per resume
	reclaimYield obs.Log2Hist // frames recovered per pressure wave (CD reclaim pass)
	occupancy    obs.Log2Hist // resident frames of the stepped tenant, per quantum

	topFaults *obs.TopK // tenant id → faults
	topFrames *obs.TopK // tenant id → Σ resident-set integral (MemSum)
	topSheds  *obs.TopK // tenant id → displacements (suspend/kill/shed)

	// SLO counters. admission-wait objective: an admission is good when
	// the tenant waited at most SLOAdmitWait ticks. fault-rate objective:
	// a closed thrash window is good when its rate is at most
	// SLOFaultRate faults per 1k references.
	admitGood, admitBad int64
	rateGood, rateBad   int64
}

func newTelem(cfg *Config) *telem {
	return &telem{
		topFaults: obs.NewTopK(cfg.TopK),
		topFrames: obs.NewTopK(cfg.TopK),
		topSheds:  obs.NewTopK(cfg.TopK),
	}
}

// merge folds o into t. Shards partition tenants, so the sketch unions
// are exact; merging in shard order makes the global state deterministic.
func (t *telem) merge(o *telem) {
	if o == nil {
		return
	}
	t.faultLat.Merge(&o.faultLat)
	t.admitWait.Merge(&o.admitWait)
	t.suspDur.Merge(&o.suspDur)
	t.reclaimYield.Merge(&o.reclaimYield)
	t.occupancy.Merge(&o.occupancy)
	t.topFaults.Merge(o.topFaults)
	t.topFrames.Merge(o.topFrames)
	t.topSheds.Merge(o.topSheds)
	t.admitGood += o.admitGood
	t.admitBad += o.admitBad
	t.rateGood += o.rateGood
	t.rateBad += o.rateBad
}

// clone deep-copies the shard state for lock-free publication: the shard
// hands the store a private copy at progress cadence and keeps mutating
// its own.
func (t *telem) clone() *telem {
	c := *t
	c.topFaults = t.topFaults.Clone()
	c.topFrames = t.topFrames.Clone()
	c.topSheds = t.topSheds.Clone()
	return &c
}

// Bound is an exact quantile bracket: the true quantile lies in [Lo, Hi].
type Bound struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

// HistSnapshot is one named histogram with its quantile brackets.
type HistSnapshot struct {
	Name string `json:"name"`
	obs.Log2Snapshot
	P50 Bound `json:"p50"`
	P90 Bound `json:"p90"`
	P99 Bound `json:"p99"`
}

// TopHitter is one heavy-hitter table row. True count ∈ [Count-Err, Count].
type TopHitter struct {
	Tenant string `json:"tenant"`
	Count  int64  `json:"count"`
	Err    int64  `json:"err,omitempty"`
}

// TopTable is one named heavy-hitter table, ranked best-first.
type TopTable struct {
	Name    string      `json:"name"`
	Entries []TopHitter `json:"entries,omitempty"`
}

// SLOSnapshot is one objective's accounting. BurnRate is the rate at
// which the error budget is being consumed: (bad/total)/budget, so 1.0
// means exactly on budget and 10 means burning ten times too fast.
type SLOSnapshot struct {
	Name       string  `json:"name"`
	Objective  string  `json:"objective"`
	Good       int64   `json:"good"`
	Bad        int64   `json:"bad"`
	Compliance float64 `json:"compliance"`
	BurnRate   float64 `json:"burnRate"`
	Budget     float64 `json:"budget"`
}

// TelemetrySnapshot is the merged, export-ready telemetry of a run (or
// of its live partial state mid-run): everything JSON-serializable,
// everything derived from integer state, byte-identical at any -j.
type TelemetrySnapshot struct {
	Hists []HistSnapshot `json:"histograms"`
	Top   []TopTable     `json:"top"`
	SLOs  []SLOSnapshot  `json:"slos"`
}

// tenantName reproduces SynthSpec naming from the id alone, so heavy-
// hitter tables render names without holding the population. Hand-rolled
// (one allocation) because snapshotting renders hundreds of these.
func tenantName(id int) string {
	if id < 0 || id > 99999 {
		return fmt.Sprintf("t%05d", id)
	}
	buf := [6]byte{'t', '0', '0', '0', '0', '0'}
	for i := 5; id > 0; i-- {
		buf[i] = byte('0' + id%10)
		id /= 10
	}
	return string(buf[:])
}

func histSnap(name string, h *obs.Log2Hist) HistSnapshot {
	s := HistSnapshot{Name: name, Log2Snapshot: h.Snapshot()}
	s.P50.Lo, s.P50.Hi = h.Quantile(0.50)
	s.P90.Lo, s.P90.Hi = h.Quantile(0.90)
	s.P99.Lo, s.P99.Hi = h.Quantile(0.99)
	return s
}

func topTable(name string, tk *obs.TopK) TopTable {
	entries := tk.Entries()
	tbl := TopTable{Name: name}
	if len(entries) > 0 {
		tbl.Entries = make([]TopHitter, 0, len(entries))
	}
	for _, e := range entries {
		tbl.Entries = append(tbl.Entries, TopHitter{Tenant: tenantName(e.Key), Count: e.Count, Err: e.Err})
	}
	return tbl
}

func sloSnap(name, objective string, good, bad int64, budget float64) SLOSnapshot {
	s := SLOSnapshot{Name: name, Objective: objective, Good: good, Bad: bad, Budget: budget}
	if total := good + bad; total > 0 {
		s.Compliance = float64(good) / float64(total)
		s.BurnRate = (float64(bad) / float64(total)) / budget
	}
	return s
}

// snapshot renders the telem state for export. cfg supplies the SLO
// objectives for self-describing output.
func (t *telem) snapshot(cfg *Config) *TelemetrySnapshot {
	return &TelemetrySnapshot{
		Hists: []HistSnapshot{
			histSnap("fault_latency", &t.faultLat),
			histSnap("admit_wait", &t.admitWait),
			histSnap("suspend_duration", &t.suspDur),
			histSnap("reclaim_yield", &t.reclaimYield),
			histSnap("occupancy", &t.occupancy),
		},
		Top: []TopTable{
			topTable("faults", t.topFaults),
			topTable("frames", t.topFrames),
			topTable("displacements", t.topSheds),
		},
		SLOs: []SLOSnapshot{
			sloSnap("admission_wait",
				fmt.Sprintf("admission wait <= %d ticks", cfg.SLOAdmitWait),
				t.admitGood, t.admitBad, cfg.SLOBudget),
			sloSnap("fault_rate",
				fmt.Sprintf("window fault rate <= %g/1k refs", cfg.SLOFaultRate),
				t.rateGood, t.rateBad, cfg.SLOBudget),
		},
	}
}

// Hist returns the named histogram, or nil.
func (ts *TelemetrySnapshot) Hist(name string) *HistSnapshot {
	for i := range ts.Hists {
		if ts.Hists[i].Name == name {
			return &ts.Hists[i]
		}
	}
	return nil
}

// Table returns the named heavy-hitter table, or nil.
func (ts *TelemetrySnapshot) Table(name string) *TopTable {
	for i := range ts.Top {
		if ts.Top[i].Name == name {
			return &ts.Top[i]
		}
	}
	return nil
}

// RenderHists renders the histogram block of the run summary: count,
// mean, the p50/p99 brackets and the max, one line per histogram.
func (ts *TelemetrySnapshot) RenderHists() string {
	var b strings.Builder
	b.WriteString("telemetry (virtual ticks; quantiles are exact brackets):\n")
	for i := range ts.Hists {
		h := &ts.Hists[i]
		fmt.Fprintf(&b, "  %-17s n=%-8d mean=%-12.1f p50=[%d,%d] p99=[%d,%d] max=%d\n",
			h.Name, h.Count, h.Mean(), h.P50.Lo, h.P50.Hi, h.P99.Lo, h.P99.Hi, h.Max)
	}
	return b.String()
}

// RenderTop renders the heavy-hitter tables, at most n rows each.
func (ts *TelemetrySnapshot) RenderTop(n int) string {
	var b strings.Builder
	for i := range ts.Top {
		tbl := &ts.Top[i]
		fmt.Fprintf(&b, "top %s:\n", tbl.Name)
		rows := tbl.Entries
		if len(rows) > n {
			rows = rows[:n]
		}
		for r, e := range rows {
			if e.Err > 0 {
				fmt.Fprintf(&b, "  %2d. %-8s %12d (±%d)\n", r+1, e.Tenant, e.Count, e.Err)
			} else {
				fmt.Fprintf(&b, "  %2d. %-8s %12d\n", r+1, e.Tenant, e.Count)
			}
		}
	}
	return b.String()
}

// RenderSLO renders the SLO block: compliance and burn rate per
// objective.
func (ts *TelemetrySnapshot) RenderSLO() string {
	var b strings.Builder
	b.WriteString("slo:\n")
	for _, s := range ts.SLOs {
		fmt.Fprintf(&b, "  %-15s good=%d bad=%d compliance=%.4f burn-rate=%.2f (budget %g, %s)\n",
			s.Name, s.Good, s.Bad, s.Compliance, s.BurnRate, s.Budget, s.Objective)
	}
	return b.String()
}

// TelemetryStore is the live publication point between a running kernel
// and the serve plane: shards publish cloned partials at progress
// cadence, Run publishes the final merged snapshot, and scrapes read a
// merged view at any moment in between. The mutex is only ever touched
// at the 64-quantum flush cadence and by scrapes — never per reference.
type TelemetryStore struct {
	mu        sync.Mutex
	run       string
	cfg       Config
	shards    []*telem
	final     *TelemetryView
	published bool
}

// TelemetryView is what a scrape of the store sees: the run descriptor,
// whether the run has completed, the incident count, and the merged
// telemetry snapshot.
type TelemetryView struct {
	Run              string             `json:"run"`
	Final            bool               `json:"final"`
	Incidents        int                `json:"incidents"`
	IncidentsDropped int64              `json:"incidentsDropped,omitempty"`
	Telemetry        *TelemetrySnapshot `json:"telemetry"`
}

// NewTelemetryStore returns an empty store.
func NewTelemetryStore() *TelemetryStore { return &TelemetryStore{} }

// begin resets the store for a run.
func (s *TelemetryStore) begin(run string, cfg Config, shards int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.run = run
	s.cfg = cfg
	s.shards = make([]*telem, shards)
	s.final = nil
	s.published = true
}

// publishShard installs a shard's cloned partial state.
func (s *TelemetryStore) publishShard(i int, t *telem) {
	if s == nil || t == nil {
		return
	}
	s.mu.Lock()
	if i >= 0 && i < len(s.shards) {
		s.shards[i] = t
	}
	s.mu.Unlock()
}

// publishFinal installs the run's completed view.
func (s *TelemetryStore) publishFinal(v *TelemetryView) {
	if s == nil || v == nil {
		return
	}
	s.mu.Lock()
	s.final = v
	s.mu.Unlock()
}

// Len reports how many runs have published into the store (0 or 1); the
// serve plane uses it to keep scrapes byte-identical until a kernel
// actually runs with telemetry.
func (s *TelemetryStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.published {
		return 1
	}
	return 0
}

// Snapshot returns the current view: the final view once the run has
// completed, otherwise a merge of the shard partials published so far
// (in shard order). Returns nil when nothing has been published.
func (s *TelemetryStore) Snapshot() *TelemetryView {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.final != nil {
		return s.final
	}
	if !s.published {
		return nil
	}
	m := newTelem(&s.cfg)
	for _, t := range s.shards {
		if t != nil {
			m.merge(t)
		}
	}
	return &TelemetryView{Run: s.run, Telemetry: m.snapshot(&s.cfg)}
}
