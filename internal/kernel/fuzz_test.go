package kernel

import (
	"testing"

	"cdmm/internal/engine"
)

// FuzzAdmission drives the admission/suspend/resume state machine with
// fuzz-chosen populations, pool sizes and chaos mixes. Whatever the
// geometry, a checked run must end with zero invariant violations and
// every tenant in a terminal state (frame conservation and reachability
// are exactly what finalChecks asserts).
func FuzzAdmission(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(16), uint8(0))
	f.Add(uint64(2), uint8(3), uint8(2), uint8(7))
	f.Add(uint64(99), uint8(15), uint8(40), uint8(5))
	f.Add(uint64(12345), uint8(1), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, tenants, frames, flags uint8) {
		cfg := Config{
			Tenants: 1 + int(tenants%16),
			// Explicit (often tiny) pools exercise the oversize-shed path
			// and the MPL >= 1 admission bypass.
			Frames:  2 + int(frames%48),
			Seed:    seed,
			Scale:   0.1,
			Quantum: 64,
			Checked: true,
			Chaos: Chaos{
				Kill:      flags&1 != 0,
				Oscillate: flags&2 != 0,
				Corrupt:   flags&4 != 0,
				Intensity: 0.8,
			},
		}
		res, err := Run(cfg, engine.New(1))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("violations: %v", res.Violations)
		}
		if res.Done+res.Shed != int64(cfg.Tenants) {
			t.Fatalf("done=%d shed=%d want sum %d (unreachable tenants)", res.Done, res.Shed, cfg.Tenants)
		}
	})
}
