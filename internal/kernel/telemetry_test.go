package kernel

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cdmm/internal/engine"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// chaosTelemetryConfig is the shared fixture: chaotic enough to exercise
// every instrumented path (kills, suspends, waves, degrades).
func chaosTelemetryConfig(tenants int) Config {
	cfg := testConfig(tenants)
	cfg.Shards = 4
	cfg.Overcommit = 8
	cfg.Chaos = Chaos{Kill: true, Oscillate: true, Corrupt: true, Intensity: 1}
	cfg.Telemetry = true
	return cfg
}

// stripTelemetry clears the telemetry-plane outputs from a copy of res,
// leaving only the fields a telemetry-off run produces.
func stripTelemetry(res *Result) *Result {
	c := *res
	c.Telemetry = nil
	c.Incidents = nil
	c.IncidentsDropped = 0
	return &c
}

// TestTelemetryDoesNotPerturbResults is the observer-effect check: the
// same configuration with the plane on and off must produce identical
// scheduling, accounting and rendered summaries — telemetry observes
// the kernel, it never steers it.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	off := chaosTelemetryConfig(96)
	off.Telemetry = false
	on := chaosTelemetryConfig(96)
	a := mustRun(t, off, engine.New(4))
	b := mustRun(t, on, engine.New(4))
	if b.Telemetry == nil {
		t.Fatal("telemetry on but Result.Telemetry is nil")
	}
	if a.String() != b.String() {
		t.Fatalf("summaries differ with telemetry on:\n%s\nvs\n%s", a, b)
	}
	if !reflect.DeepEqual(a, stripTelemetry(b)) {
		t.Fatal("core results differ with telemetry on")
	}
}

// TestTelemetryDeterministicAcrossWorkers extends the -j determinism
// guarantee to the whole plane: histograms, heavy-hitter tables, SLO
// counters and incident dumps must be byte-identical at any worker
// count.
func TestTelemetryDeterministicAcrossWorkers(t *testing.T) {
	cfg := chaosTelemetryConfig(96)
	a := mustRun(t, cfg, engine.New(1))
	b := mustRun(t, cfg, engine.New(4))
	c := mustRun(t, cfg, engine.New(16))
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(b, c) {
		t.Fatal("results differ across -j with telemetry on")
	}
	aj, _ := json.Marshal(a.Telemetry)
	cj, _ := json.Marshal(c.Telemetry)
	if !bytes.Equal(aj, cj) {
		t.Fatalf("telemetry JSON differs across -j:\n%s\nvs\n%s", aj, cj)
	}
}

// TestTelemetryContent cross-checks the plane against the kernel's own
// accounting: every admission is timed and SLO-scored, resumes match
// the suspension histogram, and with the sketch capacity above the
// population the heavy-hitter counts are exact per-tenant values.
func TestTelemetryContent(t *testing.T) {
	cfg := chaosTelemetryConfig(96)
	cfg.TopK = 128 // above the population: sketches degenerate to exact counts
	res := mustRun(t, cfg, engine.New(4))
	ts := res.Telemetry

	aw := ts.Hist("admit_wait")
	if aw.Count != res.Admitted {
		t.Errorf("admit_wait n=%d, admitted=%d", aw.Count, res.Admitted)
	}
	for _, s := range ts.SLOs {
		if s.Name == "admission_wait" && s.Good+s.Bad != res.Admitted {
			t.Errorf("admission SLO scored %d events, admitted=%d", s.Good+s.Bad, res.Admitted)
		}
	}
	if sd := ts.Hist("suspend_duration"); sd.Count != res.Resumes {
		t.Errorf("suspend_duration n=%d, resumes=%d", sd.Count, res.Resumes)
	}
	if ry := ts.Hist("reclaim_yield"); ry.Count != res.ReclaimWaves {
		t.Errorf("reclaim_yield n=%d, waves=%d", ry.Count, res.ReclaimWaves)
	}
	if fl := ts.Hist("fault_latency"); fl.Count == 0 || fl.Min <= 0 {
		t.Errorf("fault_latency degenerate: n=%d min=%d", fl.Count, fl.Min)
	}

	faults := map[string]int64{}
	for _, tr := range res.PerTenant {
		faults[tr.Name] += int64(tr.Faults)
	}
	tbl := ts.Table("faults")
	if len(tbl.Entries) == 0 {
		t.Fatal("faults table empty")
	}
	var tableSum int64
	for _, e := range tbl.Entries {
		if e.Err != 0 {
			t.Errorf("tenant %s has err=%d with k above population", e.Tenant, e.Err)
		}
		if e.Count != faults[e.Tenant] {
			t.Errorf("tenant %s: table says %d faults, accounting says %d", e.Tenant, e.Count, faults[e.Tenant])
		}
		tableSum += e.Count
	}
	if tableSum != res.Faults {
		t.Errorf("faults table sums to %d, run had %d", tableSum, res.Faults)
	}
}

// TestTelemetryStoreLiveAndFinal drives the publication path directly:
// after a run with Publish set, the store serves the final view, and the
// view matches the result's own snapshot.
func TestTelemetryStoreLiveAndFinal(t *testing.T) {
	store := NewTelemetryStore()
	if store.Len() != 0 || store.Snapshot() != nil {
		t.Fatal("fresh store not empty")
	}
	cfg := chaosTelemetryConfig(96)
	cfg.Publish = store
	res := mustRun(t, cfg, engine.New(4))
	if store.Len() != 1 {
		t.Fatalf("store Len=%d after run", store.Len())
	}
	v := store.Snapshot()
	if v == nil || !v.Final {
		t.Fatalf("store view not final: %+v", v)
	}
	if !reflect.DeepEqual(v.Telemetry, res.Telemetry) {
		t.Fatal("published view differs from the run's snapshot")
	}
	if v.Incidents != len(res.Incidents) {
		t.Errorf("view incidents=%d, result has %d", v.Incidents, len(res.Incidents))
	}
}

// TestChaosMatrixIncidents extends the chaos matrix to the flight
// recorder: kills and degrades must each capture bounded incident dumps
// whose header matches the trigger and whose rings hold real events.
func TestChaosMatrixIncidents(t *testing.T) {
	for _, c := range []Chaos{{Kill: true}, {Corrupt: true}, {Kill: true, Corrupt: true}} {
		c.Intensity = 1
		cfg := testConfig(96)
		cfg.Shards = 4
		cfg.Chaos = c
		cfg.Telemetry = true
		res := mustRun(t, cfg, engine.New(4))
		if len(res.Violations) != 0 {
			t.Fatalf("chaos %+v: violations: %v", c, res.Violations)
		}
		if c.Kill && res.Kills > 0 && len(res.Incidents) == 0 {
			t.Errorf("chaos %+v: %d kills but no incidents", c, res.Kills)
		}
		if c.Corrupt && res.Degraded > 0 && len(res.Incidents) == 0 {
			t.Errorf("chaos %+v: %d degrades but no incidents", c, res.Degraded)
		}
		if max := cfg.Shards * 4; len(res.Incidents) > max { // default MaxIncidents=4
			t.Errorf("chaos %+v: %d incidents exceed the %d cap", c, len(res.Incidents), max)
		}
		for i := range res.Incidents {
			in := &res.Incidents[i]
			switch in.Trigger {
			case "kill", "degrade":
			default:
				t.Errorf("chaos %+v: unexpected trigger %q", c, in.Trigger)
			}
			if len(in.Events) == 0 {
				t.Errorf("chaos %+v: incident %s has an empty ring", c, in.Filename())
			}
			if in.Events[len(in.Events)-1].T > in.Clock {
				t.Errorf("chaos %+v: incident %s has events after capture", c, in.Filename())
			}
		}
	}
}

// TestTripIncidentGolden pins the incident dump bytes for a fixed seed:
// the trip fault fires one synthetic violation per shard, and each
// shard's JSONL report must be byte-identical run over run — the
// regression test for the whole flight-recorder path. Regenerate with
// go test ./internal/kernel -run TripIncidentGolden -update.
func TestTripIncidentGolden(t *testing.T) {
	cfg := testConfig(64)
	cfg.Shards = 2
	cfg.Chaos = Chaos{Trip: true}
	cfg.Telemetry = true
	res := mustRun(t, cfg, engine.New(4))
	if len(res.Violations) != cfg.Shards {
		t.Fatalf("trip produced %d violations, want one per shard (%d)", len(res.Violations), cfg.Shards)
	}
	if len(res.Incidents) != cfg.Shards {
		t.Fatalf("trip produced %d incidents, want %d", len(res.Incidents), cfg.Shards)
	}
	var dump bytes.Buffer
	for i := range res.Incidents {
		in := &res.Incidents[i]
		if in.Trigger != "violation" {
			t.Fatalf("incident %d trigger %q, want violation", i, in.Trigger)
		}
		dump.WriteString("== " + in.Filename() + "\n")
		if err := in.WriteJSONL(&dump); err != nil {
			t.Fatal(err)
		}
	}
	golden := filepath.Join("testdata", "incident_trip.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, dump.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(dump.Bytes(), want) {
		t.Errorf("incident dump drifted from golden:\n%s\nwant:\n%s", dump.Bytes(), want)
	}
}
