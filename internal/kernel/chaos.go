package kernel

import (
	"strconv"

	"cdmm/internal/chaos"
	"cdmm/internal/trace"
)

// Chaos selects the kernel's fault injection. Every decision is drawn
// from a PRNG derived from (seed, fault, identity) — the same discipline
// as the internal/chaos matrix — so a chaotic run is exactly as
// reproducible as a clean one.
type Chaos struct {
	// Kill abruptly terminates tenants mid-run; a killed tenant's frames
	// are reclaimed, its stream rewinds to the start, and it re-enters
	// the admission queue (bounded by maxRestarts, after which further
	// kill points are ignored).
	Kill bool
	// Oscillate drives each shard's frame capacity with a square wave,
	// modeling pressure from outside the simulated population.
	Oscillate bool
	// Corrupt perturbs a fraction of tenants' directive streams with the
	// registered chaos injectors, exercising degraded mode under load.
	Corrupt bool
	// Trip injects a synthetic invariant violation ("chaos-trip") into
	// each shard at a seeded quantum, exercising the violation path and
	// the flight recorder end to end. Unlike the other faults it always
	// fails the run — it is a test of the incident machinery, so the
	// "all" chaos selection does not include it.
	Trip bool
	// Intensity is the usual [0, 1] dial; zero with any fault enabled
	// defaults to 0.4.
	Intensity float64
}

// enabled reports whether any fault is selected.
func (c *Chaos) enabled() bool { return c.Kill || c.Oscillate || c.Corrupt || c.Trip }

// intensity returns the effective dial.
func (c *Chaos) intensity() float64 {
	if c.Intensity > 0 {
		return c.Intensity
	}
	return 0.4
}

// corruptInjectors are the directive-stream injectors kernel corruption
// draws from: the first two trip the CD validator (degraded mode), the
// third silently mis-sizes allocations — both failure shapes the kernel
// must absorb.
var corruptInjectors = []string{"corrupt-priorities", "unknown-segment", "stale-directives"}

// planTenantChaos fixes a tenant's chaos plan at kernel start: whether
// and when it is killed, and whether its directive stream is corrupted.
func planTenantChaos(cfg *Config, t *tenant) {
	c := &cfg.Chaos
	if !c.enabled() {
		return
	}
	in := c.intensity()
	t.maxRestarts = cfg.MaxRestarts
	if c.Kill {
		rng := chaos.NewRand(chaos.DeriveSeed(cfg.Seed, "kill", t.spec.Name))
		if rng.Bool(0.10 + 0.30*in) {
			t.killAt = 1 + int64(rng.Intn(maxInt(1, t.spec.Refs)))
		}
	}
	if c.Corrupt {
		rng := chaos.NewRand(chaos.DeriveSeed(cfg.Seed, "corrupt", t.spec.Name))
		if rng.Bool(0.10 + 0.20*in) {
			t.corrupt = corruptInjectors[rng.Intn(len(corruptInjectors))]
		}
	}
}

// planShardTrip draws the shard's trip-wire quantum: every shard trips
// once, early (quanta 8-31), so even quick scaled-down runs reach it. A
// pure function of (seed, shard), independent of scheduling and -j.
func planShardTrip(cfg *Config, shardIdx int) int64 {
	if !cfg.Chaos.Trip {
		return 0
	}
	rng := chaos.NewRand(chaos.DeriveSeed(cfg.Seed, "trip", strconv.Itoa(shardIdx)))
	return 8 + int64(rng.Intn(24))
}

// materializeTenant builds (and, per the chaos plan, perturbs) the
// tenant's trace. The perturbing PRNG is derived from the tenant
// identity alone, so admission order cannot change what a tenant replays.
func materializeTenant(cfg *Config, t *tenant) *trace.Trace {
	tr := t.spec.Materialize()
	if t.corrupt == "" {
		return tr
	}
	f, err := chaos.Get(t.corrupt)
	if err != nil || f.Perturb == nil {
		return tr
	}
	rng := chaos.NewRand(chaos.DeriveSeed(cfg.Seed, "perturb", t.corrupt, t.spec.Name))
	return f.Perturb(tr, rng, cfg.Chaos.intensity())
}

// oscillator is a per-shard square wave over frame capacity: full frames
// for half a period, floor frames for the other half. The phase is a
// pure function of the clock, so suspends/resumes cannot drift it.
type oscillator struct {
	period int64
	floor  int
}

// newOscillator draws a shard's wave from the kernel seed. The floor
// keeps at least a quarter of the shard's frames (and never less than 2)
// so a starved shard still makes progress; aging covers the rest.
func newOscillator(cfg *Config, shardIdx, frames int) *oscillator {
	if !cfg.Chaos.Oscillate {
		return nil
	}
	rng := chaos.NewRand(chaos.DeriveSeed(cfg.Seed, "oscillate", strconv.Itoa(shardIdx)))
	in := cfg.Chaos.intensity()
	o := &oscillator{
		period: (8 + int64(rng.Intn(25))) * 2000,
		floor:  maxInt(2, frames/4+int(float64(frames)/2*(1-in))),
	}
	if o.floor > frames {
		o.floor = frames
	}
	return o
}

// capAt returns the capacity at clock t.
func (o *oscillator) capAt(t int64, frames int) int {
	if o == nil {
		return frames
	}
	if (t/o.period)%2 == 1 {
		return o.floor
	}
	return frames
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
