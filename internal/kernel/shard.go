package kernel

import (
	"fmt"
	"math"
	"sort"

	"cdmm/internal/obs"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// shard is one independent slice of the kernel: a private frame budget,
// a FIFO admission queue, and a sequential discrete-event loop over its
// tenants. Sharding is what makes the kernel deterministic at any -j —
// tenants are assigned to shards by id, each shard simulates alone, and
// the merge is by shard index — and what makes it scale: shards share
// nothing, so aggregate throughput is the worker pool's.
type shard struct {
	cfg    *Config
	idx    int
	frames int
	osc    *oscillator

	tenants   []*tenant // all of this shard's tenants, id order
	queue     []*tenant // admission FIFO
	active    []*tenant
	suspended []*tenant // suspension FIFO (resume order)

	clock    int64
	rr       int // round-robin cursor into active
	estSum   int // Σ Est of admitted (active + suspended) tenants
	admitSeq int

	gateClosed bool
	gateUntil  int64

	winRefs, winFaults int64
	thrashStreak       int

	// trip is the chaos trip-wire: the quantum count at which an
	// injected invariant violation fires (0 = never).
	trip int64

	remaining int // tenants not yet in a terminal state
	totalRefs int64
	doneRefs  int64

	availFn func() int
	scratch []*tenant

	o *obs.Observer // enabled observer (events), nil otherwise
	g *liveGauges   // shared live tenant-state gauges, nil when unobserved

	tl *telem      // telemetry collection state, nil when the plane is off
	fr *flightRing // flight recorder, nil when the plane is off

	res shardResult
}

// shardResult is one shard's aggregate accounting; Run merges these in
// shard order.
type shardResult struct {
	Shard  int
	Frames int
	Clock  int64
	Idle   int64

	Refs, Faults, MemSum, VTime int64

	Admitted, Done, Shed                  int64
	Suspends, Resumes                     int64
	ReclaimWaves, ReclaimedFrames         int64
	Kills, Restarts, Degraded             int64
	SwapSignals, LockReleases             int64
	ThrashEvents, Overruns                int64
	MaxQueueWait, MaxSuspendWait, Starved int64

	Violations []Violation
	Tenants    []TenantResult

	Telem            *telem
	Incidents        []Incident
	IncidentsDropped int64
}

// action is runQuantum's outcome signal to the scheduler.
type action int

const (
	actNone   action = iota
	actSignal        // the tenant raised its own CD swap signal
	actDone          // the tenant reached end of stream
)

// newShard builds shard idx over the given tenant specs.
func newShard(cfg *Config, idx, frames int, specs []SynthSpec, o *obs.Observer, g *liveGauges) *shard {
	sh := &shard{cfg: cfg, idx: idx, frames: frames, o: o, g: g}
	sh.res.Shard = idx
	sh.res.Frames = frames
	if cfg.Telemetry {
		sh.tl = newTelem(cfg)
		sh.fr = newFlightRing(cfg.FlightEvents)
	}
	sh.trip = planShardTrip(cfg, idx)
	sh.osc = newOscillator(cfg, idx, frames)
	sh.tenants = make([]*tenant, 0, len(specs))
	sh.queue = make([]*tenant, 0, len(specs))
	for _, spec := range specs {
		t := &tenant{spec: spec, state: StateQueued, maxRestarts: cfg.MaxRestarts}
		planTenantChaos(cfg, t)
		sh.tenants = append(sh.tenants, t)
		sh.queue = append(sh.queue, t)
		sh.totalRefs += int64(spec.Refs)
	}
	sh.remaining = len(sh.tenants)
	sh.availFn = func() int {
		free := sh.framesNow() - sh.usage()
		if free < 0 {
			return 0
		}
		return free
	}
	g.addQueued(int64(len(sh.tenants)))
	return sh
}

// framesNow is the shard's capacity at the current clock (the oscillator
// chaos fault shrinks it periodically).
func (sh *shard) framesNow() int { return sh.osc.capAt(sh.clock, sh.frames) }

// usage is the shard's resident frame total: only active tenants hold
// frames (suspension resets the policy).
func (sh *shard) usage() int {
	n := 0
	for _, t := range sh.active {
		n += t.pol.Resident()
	}
	return n
}

// run executes the shard to completion and returns its result.
func (sh *shard) run(prog obs.ProgressFunc) *shardResult {
	budget := sh.iterBudget()
	quanta := 0
	for sh.remaining > 0 {
		if budget--; budget < 0 {
			sh.violate("livelock", "", fmt.Sprintf("iteration budget exhausted at clock %d with %d tenants left", sh.clock, sh.remaining))
			break
		}
		sh.admitStep()
		t := sh.pickReady()
		if t == nil {
			sh.advanceClock()
			continue
		}
		sh.step(t)
		sh.pressureWave()
		sh.thrashCheck()
		quanta++
		if sh.trip > 0 && int64(quanta) == sh.trip {
			sh.violate("chaos-trip", "", fmt.Sprintf("injected invariant trip at quantum %d", quanta))
		}
		if quanta%64 == 0 {
			if prog != nil {
				done := sh.doneRefs
				if done > sh.totalRefs {
					done = sh.totalRefs
				}
				prog(int(done), int(sh.totalRefs), sh.clock)
			}
			sh.g.flush()
			if sh.cfg.Publish != nil {
				sh.cfg.Publish.publishShard(sh.idx, sh.tl.clone())
			}
		}
	}
	sh.finalChecks()
	if prog != nil {
		prog(int(sh.totalRefs), int(sh.totalRefs), sh.clock)
	}
	sh.g.flush()
	sh.res.Clock = sh.clock
	for _, t := range sh.tenants {
		sh.telFlush(t) // residual buffered telemetry, in id order
	}
	sh.res.Tenants = make([]TenantResult, 0, len(sh.tenants))
	for _, t := range sh.tenants {
		sh.res.Tenants = append(sh.res.Tenants, t.result())
	}
	sh.res.Telem = sh.tl
	return &sh.res
}

// iterBudget bounds the scheduler loop: a structural backstop far above
// any legitimate run (every quantum, directive, suspension and idle hop
// costs one iteration) so a scheduling bug surfaces as a "livelock"
// violation instead of a hang.
func (sh *shard) iterBudget() int64 {
	q := int64(sh.cfg.Quantum)
	if q < 1 {
		q = 1
	}
	return 1_000_000 + 64*(sh.totalRefs/q+1) + 4096*int64(len(sh.tenants))
}

// admitStep runs the scheduler's admission pass: resume suspended
// tenants first (FIFO, aging-bounded), then admit queued tenants through
// the hysteresis gate.
func (sh *shard) admitStep() {
	frames := sh.framesNow()
	// Resume pass. The head resumes when its estimate fits, when it has
	// aged past AgingTicks (the bounded-wait guarantee: pressure cannot
	// postpone a resume forever), or when the shard would otherwise idle.
	for len(sh.suspended) > 0 {
		s := sh.suspended[0]
		aged := sh.clock-s.suspendedAt >= sh.cfg.AgingTicks
		if !aged && len(sh.active) > 0 && sh.usage()+s.spec.Est > frames {
			break
		}
		sh.resume(s)
	}
	if len(sh.suspended) > 0 {
		return // suspended tenants outrank fresh admissions
	}
	// Gate hysteresis: closed at AdmitHi, reopens below AdmitLo (and
	// after any thrash hold-down expires).
	if sh.gateClosed && sh.clock >= sh.gateUntil &&
		sh.estSum <= int(sh.cfg.AdmitLo*float64(frames)) {
		sh.gateClosed = false
	}
	for len(sh.queue) > 0 {
		t := sh.queue[0]
		// MPL >= 1: the kernel never idles with work queued, whatever the
		// gate says — otherwise a closed gate over an empty shard would
		// deadlock.
		mustAdmit := len(sh.active) == 0
		if sh.gateClosed && !mustAdmit {
			return
		}
		if t.spec.Est > sh.frames {
			sh.popQueue()
			sh.shed(t, "oversize")
			continue
		}
		if sh.estSum+t.spec.Est > int(sh.cfg.AdmitHi*float64(frames)) && !mustAdmit {
			sh.gateClosed = true
			return
		}
		sh.popQueue()
		sh.admit(t)
	}
}

// popQueue removes the queue head.
func (sh *shard) popQueue() {
	sh.queue[0] = nil
	sh.queue = sh.queue[1:]
}

// admit moves a queued tenant to Running: materialize its (possibly
// chaos-perturbed) trace, build its pool policy, and charge its estimate
// against the gate. A re-admission after a chaos kill reuses the
// existing trace and policy.
func (sh *shard) admit(t *tenant) {
	if t.src == nil {
		t.src = materializeTenant(sh.cfg, t)
	}
	if t.cur == nil {
		t.openStream()
	}
	if t.pol == nil {
		pol, cd := newTenantPolicy(sh.cfg, &t.spec)
		t.pol = pol
		t.step = pol.(policy.BlockStepper)
		t.cd = cd
		if cd != nil {
			cd.Avail = sh.availFn
		}
	}
	t.queueWait += sh.clock - t.queuedAt
	if t.queueWait > sh.res.MaxQueueWait {
		sh.res.MaxQueueWait = t.queueWait
	}
	if sh.tl != nil {
		wait := sh.clock - t.queuedAt
		sh.tl.admitWait.Observe(wait)
		if wait <= sh.cfg.SLOAdmitWait {
			sh.tl.admitGood++
		} else {
			sh.tl.admitBad++
		}
		sh.flight("admit", t.spec.Name, "")
	}
	t.state = StateRunning
	t.admitSeq = sh.admitSeq
	sh.admitSeq++
	t.readyAt = sh.clock
	t.grace = false
	t.seenSignals = 0
	sh.estSum += t.spec.Est
	sh.active = append(sh.active, t)
	sh.res.Admitted++
	sh.g.admit()
}

// pickReady returns the next ready active tenant in round-robin order.
func (sh *shard) pickReady() *tenant {
	n := len(sh.active)
	for i := 0; i < n; i++ {
		t := sh.active[(sh.rr+i)%n]
		if t.readyAt <= sh.clock {
			sh.rr = (sh.rr + i + 1) % n
			return t
		}
	}
	return nil
}

// step runs one quantum of t and applies the resulting transition.
func (sh *shard) step(t *tenant) {
	act := sh.runQuantum(t)
	// Chaos kill: evaluated after the quantum so the kill point is a pure
	// function of executed references, independent of scheduling.
	if act != actDone && t.killAt > 0 && t.refs >= t.killAt && t.restarts < t.maxRestarts {
		sh.kill(t)
		return
	}
	switch act {
	case actSignal:
		sh.suspend(t, "signal")
	case actDone:
		sh.finish(t)
	default:
		if sh.cfg.Checked {
			sh.checkRunning(t)
		}
	}
}

// runQuantum executes up to Quantum references of t through the block
// stepper, applying directive events (free of quantum) at block
// boundaries. The clock advances by the references executed; fault
// service is aggregated into the tenant's readyAt, overlapping with
// other tenants exactly as vmsim.RunMulti overlaps per-fault — batched
// rather than per reference, which is what lets a shard sustain millions
// of references per second.
func (sh *shard) runQuantum(t *tenant) action {
	budget := sh.cfg.Quantum
	var out policy.BlockResult
	executed := 0
	act := actNone
loop:
	for budget > 0 {
		if t.bi >= len(t.blk.Pages) && !t.dirPend && !t.eof {
			if !t.cur.Next(&t.blk) {
				t.eof = true
			} else {
				t.bi = 0
				t.dirPend = t.blk.HasDir
			}
		}
		if t.eof {
			act = actDone
			break
		}
		if t.bi < len(t.blk.Pages) {
			n := len(t.blk.Pages) - t.bi
			if n > budget {
				n = budget
			}
			t.step.StepBlock(t.blk.Pages[t.bi:t.bi+n], &out)
			t.bi += n
			budget -= n
			executed += n
			continue
		}
		// The block's closing directive.
		t.dirPend = false
		switch e := t.blk.Dir; e.Kind {
		case trace.EvAlloc:
			t.pol.Alloc(t.tables.Alloc(e))
			if t.cd != nil && t.cd.SwapSignals > t.seenSignals {
				t.seenSignals = t.cd.SwapSignals
				// The tenant's own PI = 1 request was ungrantable: suspend
				// it (the §4 swapping mechanism, kernel edition).
				act = actSignal
				break loop
			}
		case trace.EvLock:
			t.pol.Lock(t.tables.Lock(e))
		case trace.EvUnlock:
			t.pol.Unlock(t.tables.Unlock(e))
		}
	}
	t.refs += int64(executed)
	t.faults += int64(out.Faults)
	t.memSum += out.MemSum
	t.vtime += out.VTime
	sh.doneRefs += int64(executed)
	sh.winRefs += int64(executed)
	sh.winFaults += int64(out.Faults)
	sh.res.Refs += int64(executed)
	sh.res.Faults += int64(out.Faults)
	sh.res.MemSum += out.MemSum
	sh.res.VTime += out.VTime
	sh.clock += int64(executed)
	t.readyAt = sh.clock + int64(out.Faults)*policy.FaultService
	t.grace = false
	if sh.tl != nil {
		if out.Faults > 0 {
			sh.tl.faultLat.Observe(int64(out.Faults) * policy.FaultService)
			t.telFaults += int64(out.Faults)
		}
		sh.tl.occupancy.Observe(int64(t.pol.Resident()))
		t.telMem += out.MemSum
	}
	return act
}

// telFlush drains a tenant's buffered fault/frame telemetry into the
// heavy-hitter sketches. Called at scheduling transitions (suspend,
// kill, finish) and at shard end — deterministic points in virtual
// time — so the amortized sketch cost stays off the quantum path.
func (sh *shard) telFlush(t *tenant) {
	if sh.tl == nil {
		return
	}
	if t.telFaults > 0 {
		sh.tl.topFaults.Add(t.spec.ID, t.telFaults)
		t.telFaults = 0
	}
	if t.telMem > 0 {
		sh.tl.topFrames.Add(t.spec.ID, t.telMem)
		t.telMem = 0
	}
}

// parkPolicy folds the tenant's policy counters, audits its lock
// bookkeeping (checked mode), and resets it, releasing every frame. The
// shared tail of suspend, kill and finish.
func (sh *shard) parkPolicy(t *tenant) {
	if t.foldPolicy() {
		sh.noteDegraded(t)
	}
	if sh.cfg.Checked && t.cd != nil && !t.cd.Degraded() {
		if err := t.cd.AuditLocks(); err != nil {
			sh.violate("lock-audit", t.spec.Name, err.Error())
		}
	}
	t.pol.Reset()
	if sh.cfg.Checked && t.pol.Resident() != 0 {
		sh.violate("frame-leak", t.spec.Name,
			fmt.Sprintf("%d frames resident after policy reset", t.pol.Resident()))
	}
}

// noteDegraded records a tenant's first directive-contract degradation.
func (sh *shard) noteDegraded(t *tenant) {
	sh.res.Degraded++
	sh.g.degrade()
	if sh.fr != nil {
		sh.flight("degrade", t.spec.Name, t.degradedReason)
		sh.incident("degrade", t.spec.Name, t.degradedReason)
	}
	if sh.o != nil {
		sh.o.Emit(obs.Event{Kind: obs.KindDegrade, T: sh.clock, Job: t.spec.Name,
			Why: t.degradedReason})
	}
}

// suspend parks an active tenant: frames released now, stream position
// kept, swap-in delay charged, FIFO position taken for resume.
func (sh *shard) suspend(t *tenant, why string) {
	res := t.pol.Resident()
	sh.parkPolicy(t)
	sh.removeActive(t)
	t.state = StateSuspended
	t.suspendedAt = sh.clock
	if rt := sh.clock + sh.cfg.SwapInDelay; rt > t.readyAt {
		t.readyAt = rt
	}
	t.swaps++
	sh.res.Suspends++
	sh.suspended = append(sh.suspended, t)
	sh.g.suspendFromRunning()
	if sh.tl != nil {
		sh.telFlush(t)
		sh.tl.topSheds.Add(t.spec.ID, 1)
		sh.flight("suspend", t.spec.Name, why)
	}
	if sh.o != nil {
		sh.o.Emit(obs.Event{Kind: obs.KindSwap, T: sh.clock, Job: t.spec.Name, Res: res, Why: why})
	}
}

// resume reactivates the suspension-FIFO head and scores its wait
// against the starvation bound.
func (sh *shard) resume(t *tenant) {
	sh.suspended[0] = nil
	sh.suspended = sh.suspended[1:]
	wait := sh.clock - t.suspendedAt
	if wait > t.maxSuspendWait {
		t.maxSuspendWait = wait
	}
	if wait > sh.res.MaxSuspendWait {
		sh.res.MaxSuspendWait = wait
	}
	if wait > sh.cfg.StarveBound {
		sh.res.Starved++
	}
	t.state = StateRunning
	t.grace = true // immune to pressure victimization until it runs once
	sh.active = append(sh.active, t)
	sh.res.Resumes++
	sh.g.resumeToRunning()
	if sh.tl != nil {
		sh.tl.suspDur.Observe(wait)
		sh.flight("resume", t.spec.Name, "")
	}
}

// kill is the chaos tenant-kill: frames reclaimed, stream rewound to the
// start, tenant re-queued at the tail. Counters already folded stay —
// the work it did was done.
func (sh *shard) kill(t *tenant) {
	sh.parkPolicy(t)
	t.closeStream(false)
	t.openStream()
	sh.removeActive(t)
	t.state = StateQueued
	t.queuedAt = sh.clock
	t.restarts++
	sh.res.Kills++
	sh.res.Restarts++
	sh.estSum -= t.spec.Est
	sh.queue = append(sh.queue, t)
	sh.g.killToQueued()
	if sh.tl != nil {
		sh.telFlush(t)
		sh.tl.topSheds.Add(t.spec.ID, 1)
		sh.flight("kill", t.spec.Name, fmt.Sprintf("restart %d", t.restarts))
		sh.incident("kill", t.spec.Name, fmt.Sprintf("chaos kill at %d refs", t.refs))
	}
	if sh.o != nil {
		sh.o.Emit(obs.Event{Kind: obs.KindSwap, T: sh.clock, Job: t.spec.Name, Why: "kill"})
	}
}

// finish retires a tenant that reached end of stream, draining any
// outstanding fault service into its finish time and freeing its trace
// and policy.
func (sh *shard) finish(t *tenant) {
	sh.telFlush(t)
	sh.parkPolicy(t)
	sh.removeActive(t)
	t.state = StateDone
	t.finished = sh.clock
	if t.readyAt > t.finished {
		t.finished = t.readyAt
	}
	sh.estSum -= t.spec.Est
	sh.remaining--
	sh.res.Done++
	sh.res.SwapSignals += t.signals
	sh.res.LockReleases += t.lockReleases
	t.closeStream(true)
	t.pol = nil
	t.step = nil
	t.cd = nil
	sh.g.finishFromRunning()
	sh.flight("finish", t.spec.Name, "")
	if sh.o != nil {
		sh.o.Emit(obs.Event{Kind: obs.KindJobDone, T: t.finished, Job: t.spec.Name,
			Refs: int(t.refs), Faults: int(t.faults)})
	}
}

// shed drops a never-admitted tenant from the queue (terminal state).
// Admitted tenants are never shed — they terminate — so the kernel's
// completion guarantee covers everything the gate let in.
func (sh *shard) shed(t *tenant, why string) {
	t.state = StateShed
	t.shedReason = why
	t.finished = sh.clock
	t.closeStream(true)
	sh.remaining--
	sh.res.Shed++
	sh.g.shedFromQueued()
	if sh.tl != nil {
		sh.tl.topSheds.Add(t.spec.ID, 1)
		sh.flight("shed", t.spec.Name, why)
	}
}

// removeActive deletes t from the active slice, keeping round-robin
// order for the remaining tenants.
func (sh *shard) removeActive(t *tenant) {
	for i, a := range sh.active {
		if a == t {
			sh.active = append(sh.active[:i], sh.active[i+1:]...)
			if sh.rr > i {
				sh.rr--
			}
			return
		}
	}
}

// pressureWave reclaims frames when residency exceeds capacity: pass 1
// asks CD tenants to give back frames above their allocation target
// (CD.Reclaim evicts LRU pages first, then force-releases soft locks in
// increasing lock priority — the §3.2 pressure valve); pass 2 suspends
// whole tenants, largest resident first, ties to the smaller id. Waves
// run at quantum boundaries, so residency may overshoot for at most one
// quantum.
func (sh *shard) pressureWave() {
	frames := sh.framesNow()
	over := sh.usage() - frames
	if over <= 0 {
		return
	}
	sh.res.ReclaimWaves++
	waveStart := over
	waveGot := 0
	defer func() {
		if sh.tl != nil {
			sh.tl.reclaimYield.Observe(int64(waveGot))
			sh.flight("wave", "", fmt.Sprintf("over=%d reclaimed=%d", waveStart, waveGot))
		}
	}()
	sh.scratch = append(sh.scratch[:0], sh.active...)
	sort.Slice(sh.scratch, func(i, j int) bool {
		a, b := sh.scratch[i], sh.scratch[j]
		ra, rb := a.pol.Resident(), b.pol.Resident()
		if ra != rb {
			return ra > rb
		}
		return a.spec.ID < b.spec.ID
	})
	for _, v := range sh.scratch {
		if over <= 0 {
			return
		}
		if v.cd == nil || v.cd.Degraded() {
			continue
		}
		excess := v.cd.Resident() - v.cd.Allocation()
		if excess <= 0 {
			continue
		}
		if excess > over {
			excess = over
		}
		got := v.cd.Reclaim(excess)
		over -= got
		waveGot += got
		sh.res.ReclaimedFrames += int64(got)
	}
	for over > 0 {
		v := sh.pickVictim()
		if v == nil {
			// Only one tenant (or only frame-less/grace-protected ones)
			// left over capacity — typically a degraded tenant under an
			// oscillation floor. Its overrun is tolerated and bounded by
			// its own address space.
			sh.res.Overruns++
			return
		}
		sh.suspend(v, "pressure")
		over = sh.usage() - frames
	}
	if sh.cfg.Checked {
		if u := sh.usage(); u > frames {
			sh.violate("frame-conservation", "",
				fmt.Sprintf("usage %d exceeds capacity %d after wave", u, frames))
		}
	}
}

// pickVictim chooses the pass-2 suspension victim: the largest resident
// set, ties to the smaller id. Freshly resumed tenants (grace) and
// tenants holding no frames are exempt, and the last active tenant is
// never suspended — suspending it could only thrash.
func (sh *shard) pickVictim() *tenant {
	if len(sh.active) <= 1 {
		return nil
	}
	var v *tenant
	for _, t := range sh.active {
		if t.grace || t.pol.Resident() == 0 {
			continue
		}
		if v == nil {
			v = t
			continue
		}
		rt, rv := t.pol.Resident(), v.pol.Resident()
		if rt > rv || (rt == rv && t.spec.ID < v.spec.ID) {
			v = t
		}
	}
	return v
}

// thrashCheck watches the shard's aggregate fault rate over a sliding
// reference window. Above the watermark it closes the admission gate and
// reduces the multiprogramming level (suspend the newest admission);
// persistent thrash additionally sheds never-admitted queued load.
func (sh *shard) thrashCheck() {
	if sh.winRefs < int64(sh.cfg.ThrashWindow) {
		return
	}
	rate := float64(sh.winFaults) * 1000 / float64(sh.winRefs)
	sh.winRefs, sh.winFaults = 0, 0
	if sh.tl != nil {
		if rate <= sh.cfg.SLOFaultRate {
			sh.tl.rateGood++
		} else {
			sh.tl.rateBad++
		}
	}
	if rate <= sh.cfg.ThrashRate {
		sh.thrashStreak = 0
		return
	}
	sh.thrashStreak++
	sh.res.ThrashEvents++
	sh.gateClosed = true
	sh.gateUntil = sh.clock + 8*policy.FaultService
	if len(sh.active) > 1 {
		var v *tenant
		for _, t := range sh.active {
			if t.grace {
				continue
			}
			if v == nil || t.admitSeq > v.admitSeq {
				v = t
			}
		}
		if v != nil {
			sh.suspend(v, "thrash")
		}
	}
	if sh.thrashStreak >= 3 {
		for i := len(sh.queue) - 1; i >= 0; i-- {
			t := sh.queue[i]
			if t.restarts > 0 {
				continue // was admitted once; must terminate, not shed
			}
			sh.queue = append(sh.queue[:i], sh.queue[i+1:]...)
			sh.shed(t, "thrash")
			break
		}
	}
}

// advanceClock hops the clock to the next schedulable instant: the
// earliest active wake-up, the suspension head's aging deadline, or the
// gate's hold-down expiry. With nothing to wait on it nudges by one tick
// and lets admission force progress.
func (sh *shard) advanceClock() {
	next := int64(math.MaxInt64)
	for _, t := range sh.active {
		if t.readyAt < next {
			next = t.readyAt
		}
	}
	if len(sh.suspended) > 0 {
		if a := sh.suspended[0].suspendedAt + sh.cfg.AgingTicks; a < next {
			next = a
		}
	}
	// A gate hold-down still in the future is a schedulable instant; an
	// expired one is not (the gate then waits on estSum, i.e. on some
	// active tenant's wake-up, already covered above).
	if sh.gateClosed && len(sh.queue) > 0 && sh.gateUntil > sh.clock && sh.gateUntil < next {
		next = sh.gateUntil
	}
	if next == math.MaxInt64 || next <= sh.clock {
		sh.clock++
		return
	}
	sh.res.Idle += next - sh.clock
	sh.clock = next
}

// checkRunning validates a running tenant's per-quantum invariants.
func (sh *shard) checkRunning(t *tenant) {
	if t.pol == nil {
		return
	}
	res := t.pol.Resident()
	if res > t.spec.V {
		sh.violate("resident-exceeds-v", t.spec.Name,
			fmt.Sprintf("resident %d > address space %d", res, t.spec.V))
	}
	if t.cd != nil && !t.cd.Degraded() && t.cd.LockedPages() > res {
		sh.violate("lock-balance", t.spec.Name,
			fmt.Sprintf("%d locked pages but only %d resident", t.cd.LockedPages(), res))
	}
}

// finalChecks verifies the shard's terminal invariants: every tenant in
// a terminal state, zero frames held, zero estimate charge outstanding.
func (sh *shard) finalChecks() {
	for _, t := range sh.tenants {
		if t.state != StateDone && t.state != StateShed {
			sh.violate("unreachable-tenant", t.spec.Name, "final state "+t.state.String())
		}
	}
	if u := sh.usage(); u != 0 {
		sh.violate("frame-leak", "", fmt.Sprintf("%d frames resident after shutdown", u))
	}
	if len(sh.res.Violations) == 0 && sh.estSum != 0 {
		sh.violate("estimate-leak", "", fmt.Sprintf("admission charge %d outstanding", sh.estSum))
	}
}

// violate records an invariant violation (never panics: chaos runs must
// degrade, not crash) and fires the flight recorder.
func (sh *shard) violate(kind, tenant, detail string) {
	sh.res.Violations = append(sh.res.Violations, Violation{
		Shard: sh.idx, Kind: kind, Tenant: tenant, Detail: detail,
	})
	if sh.fr != nil {
		sh.flight("violation", tenant, kind+": "+detail)
		sh.incident("violation", tenant, kind+": "+detail)
	}
}
