package kernel

import (
	"encoding/json"
	"fmt"
	"io"
)

// The flight recorder is the kernel's post-incident capture: a bounded
// per-shard ring of recent scheduler events (admissions, pressure waves,
// suspensions, degrades, sheds, kills, violations) that is snapshotted
// into an Incident whenever a checked invariant trips, a tenant degrades
// or chaos kills a tenant. Everything is stamped in virtual time and
// captured by the shard's own goroutine, so incident dumps are byte-
// identical across runs and worker counts for a fixed seed.

// FlightEvent is one recorded kernel event.
type FlightEvent struct {
	// T is the shard's virtual clock at the event.
	T int64 `json:"t"`
	// Kind is the event type: admit, suspend, resume, shed, kill,
	// finish, degrade, wave, violation.
	Kind string `json:"kind"`
	// Tenant names the tenant involved, when one is.
	Tenant string `json:"tenant,omitempty"`
	// Detail carries the event's specifics (suspend reason, wave
	// accounting, violation text).
	Detail string `json:"detail,omitempty"`
}

// flightRing is a fixed-size overwrite-oldest event buffer.
type flightRing struct {
	buf []FlightEvent
	n   int64 // total events ever recorded
}

func newFlightRing(size int) *flightRing {
	if size < 1 {
		size = 1
	}
	return &flightRing{buf: make([]FlightEvent, size)}
}

// record appends an event, overwriting the oldest when full.
func (r *flightRing) record(e FlightEvent) {
	r.buf[r.n%int64(len(r.buf))] = e
	r.n++
}

// capture copies the retained events oldest-first and reports how many
// were overwritten before this capture.
func (r *flightRing) capture() (events []FlightEvent, dropped int64) {
	size := int64(len(r.buf))
	kept := r.n
	if kept > size {
		kept = size
	}
	events = make([]FlightEvent, 0, kept)
	for i := r.n - kept; i < r.n; i++ {
		events = append(events, r.buf[i%size])
	}
	return events, r.n - kept
}

// Incident is one flight-recorder dump: the trigger, its context and the
// ring contents at capture time.
type Incident struct {
	// Shard and Seq identify the incident: Seq counts incidents within
	// the shard, so (Shard, Seq) is unique and stable across runs.
	Shard int `json:"shard"`
	Seq   int `json:"seq"`
	// Trigger is what fired the capture: violation, degrade or kill.
	Trigger string `json:"trigger"`
	// Clock is the shard's virtual clock at capture.
	Clock int64 `json:"clock"`
	// Tenant and Detail describe the triggering event.
	Tenant string `json:"tenant,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Dropped counts ring events overwritten before capture — what the
	// bounded recorder forgot.
	Dropped int64 `json:"dropped"`
	// Events is the ring at capture, oldest first.
	Events []FlightEvent `json:"events"`
}

// Filename returns the incident's deterministic dump name.
func (in *Incident) Filename() string {
	return fmt.Sprintf("incident-s%02d-%03d-%s.jsonl", in.Shard, in.Seq, in.Trigger)
}

// WriteJSONL writes the incident report: a header line describing the
// trigger, then one line per retained event. Every field is virtual-time
// or seed-derived, so the bytes are reproducible.
func (in *Incident) WriteJSONL(w io.Writer) error {
	hdr := struct {
		Shard   int    `json:"shard"`
		Seq     int    `json:"seq"`
		Trigger string `json:"trigger"`
		Clock   int64  `json:"clock"`
		Tenant  string `json:"tenant,omitempty"`
		Detail  string `json:"detail,omitempty"`
		Dropped int64  `json:"dropped"`
		Events  int    `json:"events"`
	}{in.Shard, in.Seq, in.Trigger, in.Clock, in.Tenant, in.Detail, in.Dropped, len(in.Events)}
	b, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	for _, e := range in.Events {
		eb, err := json.Marshal(e)
		if err != nil {
			return err
		}
		b = append(b, eb...)
		b = append(b, '\n')
	}
	_, err = w.Write(b)
	return err
}

// flight records a ring event; a no-op when the recorder is off.
func (sh *shard) flight(kind, tenant, detail string) {
	if sh.fr == nil {
		return
	}
	sh.fr.record(FlightEvent{T: sh.clock, Kind: kind, Tenant: tenant, Detail: detail})
}

// incident snapshots the ring. Captures per shard are bounded by
// MaxIncidents; overflow is counted, not stored, so a chaos soak cannot
// balloon the result.
func (sh *shard) incident(trigger, tenant, detail string) {
	if sh.fr == nil {
		return
	}
	if len(sh.res.Incidents) >= sh.cfg.MaxIncidents {
		sh.res.IncidentsDropped++
		return
	}
	events, dropped := sh.fr.capture()
	sh.res.Incidents = append(sh.res.Incidents, Incident{
		Shard:   sh.idx,
		Seq:     len(sh.res.Incidents) + 1,
		Trigger: trigger,
		Clock:   sh.clock,
		Tenant:  tenant,
		Detail:  detail,
		Dropped: dropped,
		Events:  events,
	})
}
