// Package kernel is the sharded multiprogrammed CD kernel: one global
// page-frame pool shared by thousands of simulated tenants, managed the
// way the paper's §4 operating-system component would manage it at
// scale. Where vmsim.RunMulti interleaves a handful of jobs under one
// sequential clock, the kernel partitions the pool into shards — each an
// independent deterministic discrete-event simulation — and runs the
// shards on the engine's worker pool, so results are byte-identical at
// any -j while aggregate throughput scales with cores.
//
// Robustness is the design center, in four layers:
//
//   - Admission control: tenants declare a footprint estimate (their
//     largest outer-arm ALLOCATE request); a hysteresis gate admits new
//     tenants only while the sum of admitted estimates is below the
//     shard's frames, and queues them FIFO otherwise, so overload turns
//     into queueing delay instead of thrash.
//   - Pressure-driven reclamation: when residency exceeds capacity the
//     shard runs a reclaim wave — PJ-ordered soft-lock release and LRU
//     eviction via CD.Reclaim first, then whole-tenant suspension under
//     a deterministic largest-resident victim policy. Tenants whose
//     directive streams misbehave degrade to a WS fallback
//     (policy.CheckConfig) instead of poisoning the pool.
//   - Fairness: suspended tenants sit in a FIFO and are force-resumed
//     after AgingTicks even under pressure (one-quantum grace on
//     resume), giving a provable bound on suspension wait; an aggregate
//     fault-rate watermark detects thrash and sheds load instead of
//     collapsing.
//   - Checked runs: kernel-wide invariants (frame conservation, lock
//     bookkeeping audits, every admitted tenant terminates) are verified
//     during and after the run and reported as Violations, never panics.
package kernel

import (
	"fmt"
	"strconv"

	"cdmm/internal/chaos"
	"cdmm/internal/directive"
	"cdmm/internal/mem"
	"cdmm/internal/policy"
	"cdmm/internal/trace"
)

// State is a tenant's position in the kernel's lifecycle state machine:
//
//	Queued ──admit──▶ Running ──eof──▶ Done
//	   │                │  ▲
//	   │            suspend │ resume (aging-bounded)
//	   │                ▼  │
//	   │             Suspended
//	   └──shed──▶ Shed            (never-admitted tenants only)
type State int32

const (
	StateQueued State = iota
	StateRunning
	StateSuspended
	StateDone
	StateShed
)

// String renders the state for summaries and violations.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateSuspended:
		return "suspended"
	case StateDone:
		return "done"
	case StateShed:
		return "shed"
	}
	return "unknown"
}

// phase is one locality phase of a synthesized tenant: a working-set
// window swept cyclically, preceded by an ALLOCATE sized to the window
// and optionally covered by a soft LOCK over its first pages.
type phase struct {
	Base int // first page of the window
	W    int // working-set size in pages
	Refs int // references executed in the phase
	Lock int // pages locked for the phase's duration (0 = no LOCK)
	PJ   int // lock priority of the phase's LOCK
}

// SynthSpec describes one synthesized tenant. Specs are pure functions
// of (seed, id, scale) — see NewSynthSpec — so the whole population is
// reproducible without storing anything, and a spec is a few dozen bytes
// until the tenant is admitted and its trace materialized.
type SynthSpec struct {
	ID     int
	Name   string
	Phases []phase
	// V is the tenant's address-space size in pages (CheckConfig.MaxPage).
	V int
	// Est is the declared footprint the admission gate charges: the
	// largest outer-arm ALLOCATE request across phases.
	Est int
	// Refs is the total reference count of the materialized trace.
	Refs int
}

// NewSynthSpec derives tenant id's workload from the kernel seed. The
// generator draws 1-3 phases with working sets of 3-20 pages, reference
// counts of 400-2600 per phase (scaled by scale, floor 32), and a 40%
// chance of a 1-3 page LOCK with priority 1-3. The FORAY-GEN-style
// point: diversity comes from the seeded draw, not hand-written
// programs, so ten thousand tenants cost nothing to define.
func NewSynthSpec(seed uint64, id int, scale float64) SynthSpec {
	rng := chaos.NewRand(chaos.DeriveSeed(seed, "tenant", strconv.Itoa(id)))
	s := SynthSpec{ID: id, Name: fmt.Sprintf("t%05d", id)}
	n := 1 + rng.Intn(3)
	for p := 0; p < n; p++ {
		ph := phase{
			Base: rng.Intn(24),
			W:    3 + rng.Intn(18),
			Refs: 400 + rng.Intn(2200),
		}
		if scale > 0 && scale != 1 {
			ph.Refs = int(float64(ph.Refs) * scale)
			if ph.Refs < 32 {
				ph.Refs = 32
			}
		}
		if rng.Bool(0.4) {
			ph.Lock = 1 + rng.Intn(3)
			if ph.Lock > ph.W {
				ph.Lock = ph.W
			}
			ph.PJ = 1 + rng.Intn(3)
		}
		s.Phases = append(s.Phases, ph)
		if est := ph.W + ph.Lock; est > s.Est {
			s.Est = est
		}
		// V must cover both the referenced pages and the largest request,
		// or the tenant's own directives would trip its validator.
		if v := ph.Base + ph.W; v > s.V {
			s.V = v
		}
		if v := ph.W + ph.Lock; v > s.V {
			s.V = v
		}
		s.Refs += ph.Refs
	}
	return s
}

// Materialize builds the tenant's reference stream: per phase, an
// ALLOCATE else-chain ((2, W+L) else (1, W)) honoring the §3 contract,
// an optional LOCK over the window's first pages, a cyclic sweep of the
// window, and the closing UNLOCK. Traces are built at admission and
// freed at completion, bounding materialized memory by the
// multiprogramming level rather than the population.
func (s *SynthSpec) Materialize() *trace.Trace {
	tr := trace.New(s.Name)
	for i := range s.Phases {
		ph := &s.Phases[i]
		tr.AddAlloc(&directive.Allocate{Arms: []directive.Arm{
			{PI: 2, X: ph.W + ph.Lock},
			{PI: 1, X: ph.W},
		}})
		var locked []mem.Page
		if ph.Lock > 0 {
			locked = make([]mem.Page, ph.Lock)
			for j := range locked {
				locked[j] = mem.Page(ph.Base + j)
			}
			tr.AddLock(ph.PJ, i, locked)
		}
		for r := 0; r < ph.Refs; r++ {
			tr.AddRef(mem.Page(ph.Base + r%ph.W))
		}
		if locked != nil {
			tr.AddUnlock(locked)
		}
	}
	return tr
}

// TenantResult is one tenant's final accounting, deterministic across
// shard parallelism and seeds.
type TenantResult struct {
	ID    int    `json:"id"`
	Name  string `json:"name"`
	State string `json:"state"`

	Refs   int64 `json:"refs"`
	Faults int64 `json:"pf"`
	MemSum int64 `json:"memSum"`
	VTime  int64 `json:"vtime"`

	Est int `json:"est"`
	V   int `json:"v"`

	Swaps    int `json:"swaps"`
	Restarts int `json:"restarts,omitempty"`

	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degradedReason,omitempty"`
	ShedReason     string `json:"shedReason,omitempty"`

	QueueWait      int64 `json:"queueWait"`
	MaxSuspendWait int64 `json:"maxSuspendWait"`
	Finished       int64 `json:"finished"`
}

// tenant is the kernel-side runtime state of one admitted (or queued)
// tenant. The stream-position fields mirror vmsim.Job: suspension resets
// the policy (frames are released and refault on resume) but never the
// stream position; only a chaos kill rewinds the stream.
type tenant struct {
	spec  SynthSpec
	state State

	pol  policy.Policy
	step policy.BlockStepper
	cd   *policy.CD // non-nil only for the CD pool

	src     *trace.Trace
	cur     trace.Cursor
	tables  *trace.SideTables
	blk     trace.Block
	bi      int
	dirPend bool
	eof     bool

	readyAt int64
	// grace marks a tenant resumed this quantum: pressure waves skip it
	// until it has run once, so aging-forced resumes make real progress.
	grace bool
	// seenSignals tracks CD swap signals already acted on since the last
	// policy reset.
	seenSignals int

	// Chaos plan (fixed per tenant at kernel start).
	corrupt     string // perturbing injector name, "" when clean
	killAt      int64  // refs threshold for a chaos kill; 0 = never
	maxRestarts int

	queuedAt    int64
	suspendedAt int64
	admitSeq    int

	// Telemetry accumulators: per-quantum faults and resident-set
	// integral buffered here and flushed into the heavy-hitter sketches
	// only at scheduling transitions, keeping the O(k) sketch eviction
	// scan off the per-quantum path.
	telFaults, telMem int64

	// Folded accumulators (survive policy resets and restarts).
	refs, faults, memSum, vtime int64
	swaps, restarts             int
	signals, lockReleases       int64
	degraded                    bool
	degradedReason              string
	shedReason                  string
	queueWait                   int64
	maxSuspendWait              int64
	finished                    int64
}

// openStream positions the tenant at the start of its materialized
// trace.
func (t *tenant) openStream() {
	t.cur = t.src.Blocks(trace.CursorOpts{})
	t.tables = t.src.Tables()
	t.blk = trace.Block{}
	t.bi = 0
	t.dirPend = false
	t.eof = false
}

// closeStream releases the cursor and, when drop is set, the
// materialized trace itself (terminal states only).
func (t *tenant) closeStream(drop bool) {
	if t.cur != nil {
		t.cur.Close()
		t.cur = nil
	}
	t.blk = trace.Block{}
	t.tables = nil
	if drop {
		t.src = nil
	}
}

// foldPolicy folds the policy's per-reset counters and degradation latch
// into the tenant's accumulators. Call immediately before every
// pol.Reset(); the degraded latch is recorded at most once per tenant
// even if the policy re-degrades after a reset.
func (t *tenant) foldPolicy() (newlyDegraded bool) {
	if t.cd == nil {
		return false
	}
	t.signals += int64(t.cd.SwapSignals)
	t.lockReleases += int64(t.cd.LockReleases)
	t.seenSignals = 0
	if t.cd.Degraded() && !t.degraded {
		t.degraded = true
		t.degradedReason = t.cd.DegradedReason()
		return true
	}
	return false
}

// result snapshots the tenant's final accounting.
func (t *tenant) result() TenantResult {
	return TenantResult{
		ID:             t.spec.ID,
		Name:           t.spec.Name,
		State:          t.state.String(),
		Refs:           t.refs,
		Faults:         t.faults,
		MemSum:         t.memSum,
		VTime:          t.vtime,
		Est:            t.spec.Est,
		V:              t.spec.V,
		Swaps:          t.swaps,
		Restarts:       t.restarts,
		Degraded:       t.degraded,
		DegradedReason: t.degradedReason,
		ShedReason:     t.shedReason,
		QueueWait:      t.queueWait,
		MaxSuspendWait: t.maxSuspendWait,
		Finished:       t.finished,
	}
}
