// Advisor demonstrates the compiler-side use of the paper's locality
// analysis: the advisor flags a row-wise traversal in a kernel, and the
// example then *applies* the suggested loop interchange and measures the
// difference under every policy — showing that the best memory-management
// policy is the reference pattern itself.
//
// Run with: go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"cdmm/internal/advisor"
	"cdmm/internal/core"
	"cdmm/internal/policy"
)

// rowwise is a transpose-accumulate kernel written with the row index
// outermost — the natural way to write it, and the wrong way for
// column-major storage.
const rowwise = `
PROGRAM ROWW
DIMENSION A(256,24), CS(256)
DO 20 J = 1, 24
  DO 10 I = 1, 256
    A(I,J) = FLOAT(I + J)
10 CONTINUE
20 CONTINUE
DO 100 IT = 1, 4
  DO 40 I = 1, 256
    CS(I) = 0.0
    DO 30 J = 1, 24
      CS(I) = CS(I) + A(I,J)
30  CONTINUE
40 CONTINUE
100 CONTINUE
END
`

// colwise is the same computation after the advised interchange: the
// accumulation loop now walks columns.
const colwise = `
PROGRAM COLW
DIMENSION A(256,24), CS(256)
DO 20 J = 1, 24
  DO 10 I = 1, 256
    A(I,J) = FLOAT(I + J)
10 CONTINUE
20 CONTINUE
DO 100 IT = 1, 4
  DO 35 I = 1, 256
    CS(I) = 0.0
35 CONTINUE
  DO 40 J = 1, 24
    DO 30 I = 1, 256
      CS(I) = CS(I) + A(I,J)
30  CONTINUE
40 CONTINUE
100 CONTINUE
END
`

func main() {
	before, err := core.CompileSource("", rowwise)
	if err != nil {
		log.Fatal(err)
	}
	after, err := core.CompileSource("", colwise)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- advisor findings on the original kernel ---")
	fmt.Print(advisor.Render(advisor.Analyze(before.Analysis, advisor.Options{})))

	fmt.Println("\n--- advisor findings after the interchange ---")
	fmt.Print(advisor.Render(advisor.Analyze(after.Analysis, advisor.Options{})))

	fmt.Println("\n--- effect on every policy (same computation, reordered) ---")
	fmt.Printf("%-22s %12s %12s\n", "policy", "row-wise PF", "col-wise PF")
	for _, mk := range []func() policy.Policy{
		func() policy.Policy { return policy.NewLRU(8) },
		func() policy.Policy { return policy.NewWS(2000) },
	} {
		p1, p2 := mk(), mk()
		r1, err := before.Simulate(p1)
		if err != nil {
			log.Fatal(err)
		}
		r2, err := after.Simulate(p2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12d %12d\n", p1.Name(), r1.Faults, r2.Faults)
	}
	cd1, err := before.RunCD(core.CDOptions{Level: 2})
	if err != nil {
		log.Fatal(err)
	}
	cd2, err := after.RunCD(core.CDOptions{Level: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %12d %12d\n", "CD (level 2)", cd1.Faults, cd2.Faults)
	fmt.Printf("\nCD space-time: %.4g -> %.4g (%.1fx better after interchange)\n",
		cd1.ST(), cd2.ST(), cd1.ST()/cd2.ST())
	fmt.Println("\nEven the best policy cannot fix a bad reference order; the")
	fmt.Println("compiler analysis that feeds CD's directives also tells the")
	fmt.Println("programmer how to remove the locality problem at the source.")
}
