// Quickstart: compile a small FORTRAN-subset program, look at the memory
// directives the compiler inserts, and compare the Compiler Directed
// policy against LRU and the Working Set policy on its reference trace.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cdmm/internal/core"
	"cdmm/internal/policy"
	"cdmm/internal/vmsim"
)

// A miniature numerical program: a matrix is initialized column-wise, a
// long vector-smoothing phase runs with a tiny locality, and a row-wise
// reduction pass needs the whole row span at once — three phases with very
// different memory requirements, which is exactly the structure the CD
// policy exploits.
const src = `
PROGRAM QUICK
DIMENSION A(128,16), V(512), RS(128)
DO 20 J = 1, 16
  DO 10 I = 1, 128
    A(I,J) = FLOAT(I) * 0.5 + FLOAT(J)
10 CONTINUE
20 CONTINUE
DO 40 K = 1, 30
  DO 30 L = 2, 512
    V(L) = 0.5 * (V(L) + V(L-1)) + 1.0
30 CONTINUE
40 CONTINUE
DO 70 I = 1, 128
  RS(I) = 0.0
  DO 60 J = 1, 16
    RS(I) = RS(I) + A(I,J)
60 CONTINUE
70 CONTINUE
END
`

func main() {
	prog, err := core.CompileSource("", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prog.Summary())
	fmt.Println()

	fmt.Println("--- memory directives inserted by the compiler ---")
	fmt.Print(prog.RenderDirectives())
	fmt.Println()

	fmt.Println("--- locality structure (Figure 1 style) ---")
	fmt.Print(prog.RenderLocalityTree())
	fmt.Println()

	tr, err := prog.Trace()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- simulation:", tr.Summary(), "---")

	// CD honoring the level-2 directive stratum.
	cd, err := prog.RunCD(core.CDOptions{Level: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cd)

	// Baselines on the same reference string.
	refs := tr.StripDirectives()
	for _, pol := range []policy.Policy{
		policy.NewLRU(8),
		policy.NewLRU(32),
		policy.NewWS(1000),
	} {
		fmt.Println(vmsim.Run(refs, pol))
	}

	// The tuned baselines: best LRU allocation and best WS window.
	lru, _ := prog.LRUSweep()
	m, st := lru.MinST()
	fmt.Printf("best LRU over all allocations: m=%d ST=%.4g\n", m, st)
	ws, _ := prog.WSSweep()
	tau, res, _ := ws.MinST()
	fmt.Printf("best WS over all windows:      tau=%d ST=%.4g\n", tau, res.ST())
	fmt.Printf("CD space-time advantage: %.0f%% vs best LRU, %.0f%% vs best WS\n",
		(st-cd.ST())/cd.ST()*100, (res.ST()-cd.ST())/cd.ST()*100)
}
