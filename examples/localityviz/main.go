// Localityviz reproduces the paper's two worked examples of source-level
// locality analysis: the Figure 1 code (row-wise vs column-wise arrays
// inside a two-deep nest) and the Figure 5 code (directive insertion over
// a three-level nest), then shows the same analysis for any built-in
// workload or source file passed as an argument.
//
// Run with: go run ./examples/localityviz [program-or-file]
package main

import (
	"fmt"
	"log"
	"os"

	"cdmm/internal/core"
	"cdmm/internal/workloads"
)

// figure1 is the paper's Figure 1: E and F referenced row-wise in loop 20
// form no loop-20 locality but a loop-10 locality; G and H referenced
// column-wise in loop 30 form per-column localities.
const figure1 = `
PROGRAM FIG1
DIMENSION E(200,100), F(200,100), G(200,10), H(200,10)
DO 10 I = 1, 10
  DO 20 K = 1, 100
    E(I,K) = F(I,K) + 1.0
20  CONTINUE
  DO 30 K = 1, 200
    G(K,I) = H(K,I)
30  CONTINUE
10 CONTINUE
END
`

// figure5 reconstructs the Figure 5a structure whose directive insertion
// the paper walks through: ALLOCATE (3,x1) at loop 4, else-chains at the
// inner loops, LOCK (3,A,B) and LOCK (2,E,F), and a closing UNLOCK.
const figure5 = `
PROGRAM FIG5
PARAMETER (N = 100)
DIMENSION A(N), B(N), C(N), D(N), E(N), F(N), CC(N,N), DD(N,N)
DO 4 I = 1, N
  A(I) = B(I) + 1.0
  DO 2 J = 1, N
    C(J) = D(J) + CC(I,J) + DD(J,I)
2 CONTINUE
  DO 3 K = 1, N
    E(K) = F(K) * 2.0
    DO 1 M = 1, N
      E(K) = E(K) + F(M)
1   CONTINUE
3 CONTINUE
4 CONTINUE
END
`

func show(title, name, src string) {
	p, err := core.CompileSource(name, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("==== %s ====\n%s\n\n", title, p.Summary())
	fmt.Println("locality structure:")
	fmt.Print(p.RenderLocalityTree())
	fmt.Println("\ninserted directives:")
	fmt.Print(p.RenderDirectives())
	fmt.Println()
}

func main() {
	show("Paper Figure 1", "FIG1", figure1)
	show("Paper Figure 5", "FIG5", figure5)

	if len(os.Args) > 1 {
		arg := os.Args[1]
		if w, err := workloads.Get(arg); err == nil {
			show("Workload "+arg, w.Name, w.Source)
			return
		}
		src, err := os.ReadFile(arg)
		if err != nil {
			log.Fatalf("%q is neither a workload nor a file: %v", arg, err)
		}
		show(arg, "", string(src))
	}
}
