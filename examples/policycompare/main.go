// Policycompare runs every policy over one workload's reference trace and
// prints the fault and space-time curves: LRU and OPT across allocations,
// WS across window sizes, and CD across directive-set strata — the raw
// material behind the paper's Tables 2-4.
//
// Run with: go run ./examples/policycompare [program]   (default CONDUCT)
package main

import (
	"fmt"
	"log"
	"os"

	"cdmm/internal/core"
	"cdmm/internal/policy"
	"cdmm/internal/vmsim"
	"cdmm/internal/workloads"
)

func main() {
	name := "CONDUCT"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, err := workloads.Get(name)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := core.CompileSource(w.Name, w.Source)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := prog.Trace()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tr.Summary())

	lru, _ := prog.LRUSweep()
	ws, _ := prog.WSSweep()
	refs := tr.StripDirectives()
	pages := tr.Pages()

	// LRU and OPT across a ladder of allocations.
	fmt.Println("\nallocation   LRU-PF   OPT-PF     LRU-ST")
	v := lru.V
	for _, m := range ladder(v) {
		opt := vmsim.Run(refs, policy.NewOPT(pages, m))
		fmt.Printf("%10d %8d %8d %10.4g\n", m, lru.Faults(m), opt.Faults, lru.ST(m))
	}
	mBest, stBest := lru.MinST()
	fmt.Printf("LRU minimum: ST=%.4g at m=%d\n", stBest, mBest)

	// WS across a ladder of windows.
	fmt.Println("\n       tau    WS-PF    WS-MEM      WS-ST")
	for _, tau := range ladder(tr.Refs) {
		r, err := ws.Run(tau)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %8d %9.2f %10.4g\n", tau, r.Faults, r.MEM(), r.ST())
	}
	tauBest, wsBest, err := ws.MinST()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WS minimum: ST=%.4g at tau=%d\n", wsBest.ST(), tauBest)

	// CD across directive strata, plus the workload's canonical set.
	fmt.Println("\n  CD level    CD-PF    CD-MEM      CD-ST")
	for lvl := 1; lvl <= prog.MaxPI(); lvl++ {
		r, err := prog.RunCD(core.CDOptions{Level: lvl})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %8d %9.2f %10.4g\n", lvl, r.Faults, r.MEM(), r.ST())
	}
	set := w.DefaultSet()
	canonical, err := prog.RunCD(core.CDOptions{Level: set.Level, Overrides: set.Overrides})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("canonical set %q: PF=%d MEM=%.2f ST=%.4g\n",
		set.Name, canonical.Faults, canonical.MEM(), canonical.ST())
	fmt.Printf("\nCD vs best LRU: %+.0f%% ST   CD vs best WS: %+.0f%% ST\n",
		(stBest-canonical.ST())/canonical.ST()*100,
		(wsBest.ST()-canonical.ST())/canonical.ST()*100)
}

// ladder yields a small geometric ladder of points up to n.
func ladder(n int) []int {
	var out []int
	for x := 2; x < n; x *= 2 {
		out = append(out, x)
	}
	out = append(out, n)
	return out
}
