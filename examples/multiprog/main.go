// Multiprog demonstrates the extension the paper leaves open ("the
// performance of CD in a multiprogramming environment is still to be
// evaluated"): several workloads share a fixed page-frame pool, fault
// service overlaps across jobs, and the memory manager swaps jobs under
// pressure. The same mix is run twice — all jobs under CD with their
// canonical directive sets, then all jobs under WS — and the makespans,
// faults and swap counts are compared.
//
// Run with: go run ./examples/multiprog [frames]   (default 80: moderate pressure; try 30 for severe)
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"cdmm/internal/policy"
	"cdmm/internal/trace"
	"cdmm/internal/vmsim"
	"cdmm/internal/workloads"
)

func main() {
	frames := 80
	if len(os.Args) > 1 {
		f, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad frame count %q: %v", os.Args[1], err)
		}
		frames = f
	}

	mix := []string{"TQL", "HWSCRT", "MAIN"}
	traces := map[string]*trace.Trace{}
	for _, name := range mix {
		w, err := workloads.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		c, err := workloads.Compile(w)
		if err != nil {
			log.Fatal(err)
		}
		traces[name] = c.Trace
		fmt.Println(c.Trace.Summary())
	}
	fmt.Printf("\nshared pool: %d frames\n", frames)

	// Run 1: every job under CD with its canonical directive set.
	cdJobs := make([]*vmsim.Job, len(mix))
	for i, name := range mix {
		w, _ := workloads.Get(name)
		cdJobs[i] = &vmsim.Job{
			Name:   name,
			Trace:  traces[name],
			Policy: policy.NewCD(w.DefaultSet().Selector(), 2),
		}
	}
	cdRes := vmsim.RunMulti(cdJobs, vmsim.MultiConfig{Frames: frames})
	fmt.Println("\n--- all jobs under CD ---")
	fmt.Println(cdRes)

	// Run 2: the same mix under the Working Set policy.
	wsJobs := make([]*vmsim.Job, len(mix))
	for i, name := range mix {
		wsJobs[i] = &vmsim.Job{
			Name:   name,
			Trace:  traces[name].StripDirectives(),
			Policy: policy.NewWS(1000),
		}
	}
	wsRes := vmsim.RunMulti(wsJobs, vmsim.MultiConfig{Frames: frames})
	fmt.Println("\n--- all jobs under WS (tau=1000) ---")
	fmt.Println(wsRes)

	fmt.Printf("\nmakespan: CD=%d WS=%d (%+.1f%%)\n",
		cdRes.Makespan, wsRes.Makespan,
		float64(wsRes.Makespan-cdRes.Makespan)/float64(cdRes.Makespan)*100)
}
